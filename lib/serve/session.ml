open Functs_ir
open Functs_core
open Functs_interp
open Functs_workloads
module Engine = Functs_exec.Engine
module Shape_infer = Functs_ir.Shape_infer
module Tensor = Functs_tensor.Tensor
module Tracer = Functs_obs.Tracer
module Metrics = Functs_obs.Metrics
module Journal = Functs_obs.Journal

(* --- process-wide serve.* metrics (session stats are per-session) --- *)

let m_submitted = Metrics.counter "serve.submitted"
let m_completed = Metrics.counter "serve.completed"
let m_shed = Metrics.counter "serve.shed"
let m_fallbacks = Metrics.counter "serve.interp_fallbacks"
let m_overloaded = Metrics.counter "serve.overloaded"
let m_deadline = Metrics.counter "serve.deadline_expired"
let m_cancelled = Metrics.counter "serve.cancelled"
let m_batches = Metrics.counter "serve.batches"
let h_batch = Metrics.histogram "serve.batch_size"

(* Bucket occupancy: how many requests each batched engine run carried.
   One counter per configured bucket size ([serve.bucket.b<k>], counted
   in runs), plus the occupancy histogram in requests-per-run. *)
let h_occupancy = Metrics.histogram "serve.bucket_occupancy"

(* Per-stage latency histograms, one per hand-off in the request
   lifecycle (enqueue → dequeue → engine-acquired → run-done →
   completed).  Each stage is observed at [finish] from the ticket's
   stamps, so a stage only records when both of its endpoints were
   actually reached (an expired request has no exec stage). *)
let h_queue_wait = Metrics.histogram "serve.latency.queue_wait_us"
let h_stage_batch = Metrics.histogram "serve.latency.batch_us"
let h_stage_exec = Metrics.histogram "serve.latency.exec_us"
let h_total = Metrics.histogram "serve.latency.total_us"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let g_queue_peak = Metrics.gauge "serve.queue_depth_peak"

type stats = {
  submitted : int;
  completed : int;
  shed : int;
  interp_fallbacks : int;
  overloaded : int;
  deadline_expired : int;
  cancelled : int;
  batches : int;
  batched_runs : int;
  bucket_runs : (int * int) list;
  shards : int;
  max_queue_depth : int;
}

let zero_stats =
  {
    submitted = 0;
    completed = 0;
    shed = 0;
    interp_fallbacks = 0;
    overloaded = 0;
    deadline_expired = 0;
    cancelled = 0;
    batches = 0;
    batched_runs = 0;
    bucket_runs = [];
    shards = 1;
    max_queue_depth = 0;
  }

let bump_bucket runs k =
  let rec go = function
    | [] -> [ (k, 1) ]
    | (k', n) :: rest when k' = k -> (k', n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go runs

(* A ticket owns its own mutex/condvar pair so awaiting producers never
   contend on the session lock, and the dispatcher's completion broadcast
   wakes exactly the requester.  Lifecycle stamps are written by exactly
   one side at a time (producer at enqueue, dispatcher afterwards) and
   only read after [await] returns or under the ticket lock, so they
   need no extra synchronisation.  A stamp is 0. until reached.

   [t_claimed] arbitrates the dispatcher against [cancel]: whoever flips
   it under the ticket lock owns the outcome, so a cancel that races the
   engine run can neither lose its error nor double-count the request. *)
type ticket = {
  t_id : int;  (* process-unique; keys the trace flow arrow *)
  t_args : Value.t list;
  t_shape : string;
  t_deadline : float option;  (* absolute Unix time *)
  t_enq : float;
  mutable t_deq : float;  (* popped off the queue *)
  mutable t_batched : float;  (* micro-batch assembled *)
  mutable t_engine : float;  (* engine acquired (prepare returned) *)
  mutable t_rundone : float;  (* engine/interp run returned *)
  t_lock : Mutex.t;
  t_cond : Condition.t;
  mutable t_claimed : bool;  (* an executor owns this ticket's outcome *)
  mutable t_result : (Value.t list, Error.t) result option;
  mutable t_done : float;
}

let next_ticket_id = Atomic.make 1

type input = { in_args : Value.t list; in_deadline_us : float option }

let input ?deadline_us args = { in_args = args; in_deadline_us = deadline_us }

(* One compile variant: the workload's program instantiated at
   [bk_size × native batch], functionalized once at session create.  The
   graph/shape pair is the compile-cache key, so re-probing [prepare]
   per dispatch is a warm hit, never a rebuild. *)
type bucket = {
  bk_size : int;  (* requests per batched run *)
  bk_graph : Graph.t;  (* TensorSSA form, contractually frozen *)
  bk_inputs : Shape_infer.shape option list;
}

(* A dispatcher shard.  Shard 0 serves from the process-wide compile
   cache (every probe is a warm hit — the [engine.cache.*] counters keep
   proving the session never recompiles).  Extra shards own private
   uncached engines: two shards sharing one cached engine would only
   serialize on its run mutex, and [~cache:false] builds leave the LRU
   cache and its hit/miss counters untouched. *)
type shard = {
  sh_cached : bool;
  sh_local : (int, Engine.t) Hashtbl.t;  (* bucket size → private engine *)
}

type t = {
  s_config : Config.t;
  s_profile : Compiler_profile.t;
  s_reference : Graph.t;  (* eager semantics, for the interpreter fallback *)
  s_graph : Graph.t;  (* functionalized TensorSSA form, contractually frozen *)
  s_native_sig : string;  (* shape signature the buckets were compiled for *)
  s_batching : Workload.batching option;  (* None: serve at bucket 1 only *)
  s_buckets : bucket list;  (* descending size; always ends with size 1 *)
  s_dispatch_limit : int;  (* same-shape requests popped per dispatch *)
  s_bucket_counters : (int * Metrics.counter) list;
  s_lock : Mutex.t;
  s_wake : Condition.t;  (* queue became non-empty / state changed *)
  s_queue : ticket Queue.t;
  mutable s_closing : bool;
  mutable s_paused : bool;
  mutable s_batch_broken : bool;  (* runtime demotion: batch runs misbehaved *)
  mutable s_last_bucket : int;  (* last journaled bucket choice; 0 = none *)
  mutable s_stats : stats;
  mutable s_dispatchers : unit Domain.t list;
  mutable s_engine : Engine.t option;
      (* most recently acquired engine, for attribution readout — the
         shape-keyed cache may hand different engines per signature;
         profiling reads whichever served last *)
}

let locked t f =
  Mutex.lock t.s_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_lock) f

let shape_signature args =
  String.concat ";"
    (List.map
       (function
         | Value.Tensor tn ->
             String.concat "x"
               (Array.to_list
                  (Array.map string_of_int (Tensor.shape tn)))
         | Value.Int _ | Value.Float _ | Value.Bool _ | Value.List _ -> "_")
       args)

let clone_args =
  List.map (function
    | Value.Tensor tn -> Value.Tensor (Tensor.clone tn)
    | (Value.Int _ | Value.Float _ | Value.Bool _ | Value.List _) as v -> v)

(* --- completion --- *)

let observe_stages tk now =
  let stage h a b = if a > 0. && b > 0. && b >= a then Metrics.observe h (1e6 *. (b -. a)) in
  stage h_queue_wait tk.t_enq tk.t_deq;
  stage h_stage_batch tk.t_deq tk.t_engine;
  stage h_stage_exec tk.t_engine tk.t_rundone;
  stage h_total tk.t_enq now

(* Claim before publishing: stats are bumped between the claim and the
   result store, so a caller whose [await] returns already sees this
   completion in [stats], and a racing [cancel] of an already-running
   request finds the ticket claimed and reports [false] instead of
   overwriting a delivered response. *)
let finish t tk result =
  let now = Unix.gettimeofday () in
  Mutex.lock tk.t_lock;
  let owner = (not tk.t_claimed) && tk.t_result = None in
  if owner then tk.t_claimed <- true;
  Mutex.unlock tk.t_lock;
  if owner then begin
    Metrics.incr m_completed;
    observe_stages tk now;
    locked t (fun () ->
        t.s_stats <- { t.s_stats with completed = t.s_stats.completed + 1 });
    Mutex.lock tk.t_lock;
    tk.t_result <- Some result;
    tk.t_done <- now;
    Condition.broadcast tk.t_cond;
    Mutex.unlock tk.t_lock
  end

(* The interpreter mutates argument tensors (imperative semantics), so
   the fallback path clones; the engine marks arguments foreign and
   never writes them. *)
let run_interp t tk =
  locked t (fun () ->
      t.s_stats <-
        { t.s_stats with interp_fallbacks = t.s_stats.interp_fallbacks + 1 });
  Metrics.incr m_fallbacks;
  Tracer.instant "serve.interp_fallback";
  match Eval.run t.s_reference (clone_args tk.t_args) with
  | outputs ->
      tk.t_rundone <- Unix.gettimeofday ();
      finish t tk (Ok outputs)
  | exception Eval.Runtime_error m -> finish t tk (Error (Error.Runtime_error m))
  | exception exn ->
      finish t tk (Error (Error.Runtime_error (Printexc.to_string exn)))

let shed_one t tk err =
  locked t (fun () ->
      t.s_stats <- { t.s_stats with shed = t.s_stats.shed + 1 });
  Metrics.incr m_shed;
  finish t tk (Error err)

let degrade t tk err =
  match t.s_config.Config.policy with
  | `Interp_fallback -> run_interp t tk
  | `Shed -> shed_one t tk err

let run_engine t eng tk =
  match Engine.run eng tk.t_args with
  | outputs ->
      tk.t_rundone <- Unix.gettimeofday ();
      finish t tk (Ok outputs)
  | exception exn ->
      let m =
        match exn with Eval.Runtime_error m -> m | e -> Printexc.to_string e
      in
      degrade t tk (Error.Engine_failure m)

let expire t tk =
  locked t (fun () ->
      t.s_stats <-
        { t.s_stats with deadline_expired = t.s_stats.deadline_expired + 1 });
  Metrics.incr m_deadline;
  Journal.record Deadline_degrade "serve" ~id:tk.t_id
    ~arm:
      (match t.s_config.Config.policy with
      | `Interp_fallback -> "interp_fallback"
      | `Shed -> "shed")
    ~detail:tk.t_shape
    ~value:(1e6 *. (Unix.gettimeofday () -. tk.t_enq));
  degrade t tk Error.Deadline_exceeded

(* --- engines --- *)

let prepare_engine t ?cache graph ~inputs =
  let cfg = t.s_config in
  let eng =
    Engine.prepare ~profile:t.s_profile ~parallel:true
      ~domains:cfg.Config.domains ~loop_grain:cfg.Config.loop_grain
      ~kernel_grain:cfg.Config.kernel_grain
      ~cache:(Option.value cache ~default:cfg.Config.cache)
      ~jit:cfg.Config.jit ~jit_dir:cfg.Config.jit_dir graph ~inputs
  in
  t.s_engine <- Some eng;
  eng

(* Requests outside the native signature (ad-hoc shapes) always go
   through the shared shape-keyed cache at bucket 1. *)
let engine_for t args =
  prepare_engine t t.s_graph ~inputs:(Engine.input_shapes args)

let bucket_engine t sh bk =
  if sh.sh_cached then prepare_engine t bk.bk_graph ~inputs:bk.bk_inputs
  else
    match Hashtbl.find_opt sh.sh_local bk.bk_size with
    | Some eng ->
        t.s_engine <- Some eng;
        eng
    | None ->
        let eng = prepare_engine t ~cache:false bk.bk_graph ~inputs:bk.bk_inputs in
        Hashtbl.add sh.sh_local bk.bk_size eng;
        eng

(* --- batched scatter / gather --- *)

(* Shared ([None]-axis) arguments must be the same physical tensor in
   every bucket member: descriptor equality over the same storage is the
   contract (cheap, and exactly what a caller reusing one weight tensor
   across submits provides).  Scalars compare structurally. *)
let same_shared a b =
  match (a, b) with
  | Value.Tensor x, Value.Tensor y ->
      Tensor.same_storage x y
      && x.Tensor.offset = y.Tensor.offset
      && x.Tensor.shape = y.Tensor.shape
      && x.Tensor.strides = y.Tensor.strides
  | x, y -> x = y

let shared_compatible (bx : Workload.batching) a b =
  List.for_all2
    (fun ax (va, vb) ->
      match ax with Some _ -> true | None -> same_shared va vb)
    bx.Workload.input_axes
    (List.map2 (fun x y -> (x, y)) a.t_args b.t_args)

let scatter (bx : Workload.batching) group =
  let arg_arrays = List.map (fun tk -> Array.of_list tk.t_args) group in
  let head = List.hd arg_arrays in
  List.mapi
    (fun i ax ->
      match ax with
      | None -> head.(i)
      | Some dim ->
          Value.Tensor
            (Tensor.concat_axis ~dim
               (List.map
                  (fun a ->
                    match a.(i) with
                    | Value.Tensor tn -> tn
                    | _ -> invalid_arg "Session.scatter: non-tensor batch axis")
                  arg_arrays)))
    bx.Workload.input_axes

let rec transpose = function
  | [] -> []
  | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let gather (bx : Workload.batching) k outputs =
  let per_output =
    List.map2
      (fun ax out ->
        match (ax, out) with
        | Some dim, Value.Tensor tn ->
            let total = (Tensor.shape tn).(dim) in
            if total mod k <> 0 then
              invalid_arg "Session.gather: batched extent not divisible"
            else
              let per = total / k in
              List.map
                (fun p -> Value.Tensor p)
                (Tensor.split_axis ~dim ~parts:(List.init k (fun _ -> per)) tn)
        | (None | Some _), v -> List.init k (fun _ -> v))
      bx.Workload.output_axes outputs
  in
  transpose per_output

(* --- the dispatcher ---

   Per shard, one domain, one loop: wait for work, pop a same-shape run
   of requests, decompose it greedily into the largest compiled batch
   buckets that fit, scatter each bucket's inputs into one batched
   buffer, run the bucket engine once, and split the outputs back per
   request.  Exits only when closing AND drained, so [close] never loses
   queued requests. *)

(* Journal the bucket chooser's decision when it changes, so
   [functs why] explains which bucket requests land in. *)
let note_bucket t k ~live =
  if t.s_last_bucket <> k then begin
    let kind =
      if t.s_last_bucket = 0 then Journal.Tuner_pin else Journal.Tuner_flip
    in
    t.s_last_bucket <- k;
    Journal.record kind "serve.bucket" ~arm:(string_of_int k)
      ~detail:(Printf.sprintf "live=%d" live)
      ~value:(float_of_int k)
  end

let count_run t k ~batched =
  Metrics.incr m_batches;
  Metrics.observe h_batch (float_of_int k);
  Metrics.observe h_occupancy (float_of_int k);
  (match List.assoc_opt k t.s_bucket_counters with
  | Some c -> Metrics.incr c
  | None -> ());
  locked t (fun () ->
      t.s_stats <-
        {
          t.s_stats with
          bucket_runs = bump_bucket t.s_stats.bucket_runs k;
          batched_runs = (t.s_stats.batched_runs + if batched then 1 else 0);
        })

let rec split_at n = function
  | rest when n = 0 -> ([], rest)
  | [] -> ([], [])
  | x :: rest ->
      let taken, left = split_at (n - 1) rest in
      (x :: taken, left)

(* One bucket: scatter → run once → gather.  Any failure (engine raise,
   a mis-declared axis tripping scatter/gather validation) degrades every
   member per policy; axis trouble additionally demotes the session to
   bucket-1 serving for good. *)
let run_bucket t sh bx bk group =
  let k = List.length group in
  count_run t k ~batched:true;
  Tracer.span_args "serve.bucket_run"
    ~args:(fun () -> [ ("bucket", string_of_int bk.bk_size); ("n", string_of_int k) ])
    (fun () ->
      match
        let batched_args = scatter bx group in
        let eng = bucket_engine t sh bk in
        let acquired = Unix.gettimeofday () in
        List.iter (fun tk -> tk.t_engine <- acquired) group;
        let outputs = Engine.run eng batched_args in
        let rundone = Unix.gettimeofday () in
        List.iter (fun tk -> tk.t_rundone <- rundone) group;
        gather bx k outputs
      with
      | per_request ->
          List.iter2 (fun tk outs -> finish t tk (Ok outs)) group per_request
      | exception exn ->
          let m =
            match exn with
            | Eval.Runtime_error m -> m
            | Invalid_argument m ->
                t.s_batch_broken <- true;
                Journal.record Tuner_expire "serve.bucket" ~arm:"demoted"
                  ~detail:m;
                m
            | e -> Printexc.to_string e
          in
          List.iter (fun tk -> degrade t tk (Error.Engine_failure m)) group)

let run_singles t sh bk group =
  match group with
  | [] -> ()
  | _ -> (
      count_run t (List.length group) ~batched:false;
      match bucket_engine t sh bk with
      | eng ->
          let acquired = Unix.gettimeofday () in
          List.iter (fun tk -> tk.t_engine <- acquired) group;
          List.iter (fun tk -> run_engine t eng tk) group
      | exception exn ->
          (* prepare itself failed: same degradation as a failing run *)
          let m = Printexc.to_string exn in
          List.iter (fun tk -> degrade t tk (Error.Engine_failure m)) group)

(* Skip tickets whose outcome is already owned (cancelled before
   dispatch); each submitted ticket passes through here exactly once, so
   the cancelled count is exact. *)
let drop_cancelled t batch =
  let cancelled, live =
    List.partition
      (fun tk ->
        Mutex.lock tk.t_lock;
        let gone = tk.t_claimed || tk.t_result <> None in
        Mutex.unlock tk.t_lock;
        gone)
      batch
  in
  (match cancelled with
  | [] -> ()
  | _ ->
      let n = List.length cancelled in
      Metrics.incr ~by:n m_cancelled;
      locked t (fun () ->
          t.s_stats <- { t.s_stats with cancelled = t.s_stats.cancelled + n }));
  live

let split_expired t live =
  let now = Unix.gettimeofday () in
  let expired, live =
    List.partition
      (fun tk ->
        match tk.t_deadline with Some d -> now > d | None -> false)
      live
  in
  List.iter (fun tk -> expire t tk) expired;
  live

(* Greedy decomposition: serve the largest bucket that fits, recurse on
   the remainder.  Deadlines are re-checked at every step, so a member
   whose deadline lapses while earlier buckets of the same dispatch run
   is degraded mid-bucket instead of riding a stale slot. *)
let rec serve_buckets t sh bx group =
  match drop_cancelled t (split_expired t group) with
  | [] -> ()
  | live ->
      let n = List.length live in
      let bk =
        match List.find_opt (fun b -> b.bk_size <= n) t.s_buckets with
        | Some b -> b
        | None -> List.nth t.s_buckets (List.length t.s_buckets - 1)
      in
      note_bucket t bk.bk_size ~live:n;
      let chunk, rest = split_at bk.bk_size live in
      if bk.bk_size > 1 then run_bucket t sh bx bk chunk
      else run_singles t sh bk chunk;
      serve_buckets t sh bx rest

let process_batch t sh = function
  | [] -> ()
  | first :: _ as batch ->
      let now = Unix.gettimeofday () in
      List.iter (fun tk -> tk.t_batched <- now) batch;
      Tracer.span_args "serve.batch"
        ~args:(fun () ->
          [ ("shape", first.t_shape); ("n", string_of_int (List.length batch)) ])
        (fun () ->
          (* the flow arrows from each producer's submit span land on
             this batch span, so Perfetto shows which submits fed it *)
          List.iter (fun tk -> Tracer.flow_finish "serve.req" ~id:tk.t_id) batch;
          match t.s_batching with
          | Some bx
            when first.t_shape = t.s_native_sig && not t.s_batch_broken ->
              (* bucket members must also agree on their shared (weight)
                 arguments; incompatible members split into their own
                 greedy decompositions *)
              let rec by_compat = function
                | [] -> ()
                | head :: _ as remaining ->
                    let mine, others =
                      List.partition (shared_compatible bx head) remaining
                    in
                    serve_buckets t sh bx mine;
                    by_compat others
              in
              by_compat batch
          | Some _ | None -> (
              match drop_cancelled t (split_expired t batch) with
              | [] -> ()
              | live ->
                  count_run t (List.length live) ~batched:false;
                  (* ad-hoc shape: shared cache probe, serve at bucket 1 *)
                  (match engine_for t first.t_args with
                  | eng ->
                      let acquired = Unix.gettimeofday () in
                      List.iter (fun tk -> tk.t_engine <- acquired) live;
                      List.iter (fun tk -> run_engine t eng tk) live
                  | exception exn ->
                      let m = Printexc.to_string exn in
                      List.iter
                        (fun tk -> degrade t tk (Error.Engine_failure m))
                        live)))

let rec dispatch_loop t sh =
  let action =
    locked t (fun () ->
        while
          (Queue.is_empty t.s_queue || t.s_paused) && not t.s_closing
        do
          Condition.wait t.s_wake t.s_lock
        done;
        if Queue.is_empty t.s_queue && t.s_closing then `Exit
        else begin
          (* closing overrides pause so close always drains *)
          let head = Queue.pop t.s_queue in
          let batch = ref [ head ] in
          let limit = t.s_dispatch_limit in
          let continue = ref true in
          while
            !continue && List.length !batch < limit
            && not (Queue.is_empty t.s_queue)
          do
            if (Queue.peek t.s_queue).t_shape = head.t_shape then
              batch := Queue.pop t.s_queue :: !batch
            else continue := false
          done;
          t.s_stats <- { t.s_stats with batches = t.s_stats.batches + 1 };
          let deq = Unix.gettimeofday () in
          List.iter (fun tk -> tk.t_deq <- deq) !batch;
          Metrics.set g_queue_depth (float_of_int (Queue.length t.s_queue));
          `Batch (List.rev !batch)
        end)
  in
  match action with
  | `Exit -> ()
  | `Batch batch ->
      process_batch t sh batch;
      dispatch_loop t sh

let make_shard ~cached = { sh_cached = cached; sh_local = Hashtbl.create 4 }

(* --- bucket compilation (at create) --- *)

(* Static cross-check of a bucket engine against the base engine through
   the shape-inference results both retained: every declared output axis
   whose extents inference pinned down must scale by exactly the bucket
   factor.  Axes inference left Unknown pass here and are enforced at
   gather time instead (split_axis validates the concrete extents). *)
let outputs_scale_ok (bx : Workload.batching) ~factor ~base ~bucket =
  let rec go axes bs ks =
    match (axes, bs, ks) with
    | [], [], [] -> true
    | ax :: axes, b :: bs, k :: ks ->
        (match (ax, b, k) with
        | Some axis, Some bsh, Some ksh -> (
            match Shape_infer.scale_axis bsh ~axis ~factor with
            | None -> true
            | Some predicted -> (
                Array.length predicted = Array.length ksh
                &&
                match
                  (Shape_infer.extent ksh axis, Shape_infer.extent predicted axis)
                with
                | Some got, Some want -> got = want
                | _ -> true))
        | _ -> true)
        && go axes bs ks
    | _ -> false
  in
  go bx.Workload.output_axes base bucket

(* Engine.run invocations issued per engine at session build, before any
   request is accepted.  Enough for the scheduler's tuner to sample every
   arm and settle on a pin, so serving latency never pays for the slow
   arms' probe runs. *)
let warmup_runs = 3

let build_buckets t (w : Workload.t) bx ~batch ~seq ~base_engine =
  let base_out = Engine.output_shapes base_engine in
  let native_args = w.Workload.inputs ~batch ~seq in
  if
    List.length bx.Workload.input_axes <> List.length native_args
    || List.length bx.Workload.output_axes <> List.length base_out
  then []
  else
    List.filter_map
      (fun k ->
        if k <= 1 then None
        else
          try
            let g =
              Graph.clone (Workload.graph w ~batch:(k * batch) ~seq)
            in
            ignore (Passes.tensorssa_pipeline g);
            let bucket_args = w.Workload.inputs ~batch:(k * batch) ~seq in
            let inputs = Engine.input_shapes bucket_args in
            let bk = { bk_size = k; bk_graph = g; bk_inputs = inputs } in
            (* warm compile now, so steady-state dispatches never build *)
            let eng = bucket_engine t (make_shard ~cached:true) bk in
            if
              outputs_scale_ok bx ~factor:k ~base:base_out
                ~bucket:(Engine.output_shapes eng)
            then begin
              (* burn the scheduler's initial arm sampling here so the
                 first serving dispatches run already-pinned arms *)
              (try
                 for _ = 1 to warmup_runs do
                   ignore (Engine.run eng bucket_args)
                 done
               with _ -> ());
              Some bk
            end
            else None
          with _ -> None)
      t.s_config.Config.batch_buckets

(* --- public surface --- *)

let create ?(config = Config.default) ?(profile = Compiler_profile.tensorssa)
    ?batch ?seq (w : Workload.t) =
  match
    let batch = Option.value batch ~default:w.Workload.default_batch in
    let seq = Option.value seq ~default:w.Workload.default_seq in
    let reference = Workload.graph w ~batch ~seq in
    let g = Graph.clone reference in
    ignore (Passes.tensorssa_pipeline g);
    let native_args = w.Workload.inputs ~batch ~seq in
    let base =
      {
        bk_size = 1;
        bk_graph = g;
        bk_inputs = Engine.input_shapes native_args;
      }
    in
    let t =
      {
        s_config = config;
        s_profile = profile;
        s_reference = reference;
        s_graph = g;
        s_native_sig = shape_signature native_args;
        s_batching = w.Workload.batching;
        s_buckets = [ base ];
        s_dispatch_limit = config.Config.max_batch;
        s_bucket_counters = [];
        s_lock = Mutex.create ();
        s_wake = Condition.create ();
        s_queue = Queue.create ();
        s_closing = false;
        s_paused = false;
        s_batch_broken = false;
        s_last_bucket = 0;
        s_stats = zero_stats;
        s_dispatchers = [];
        s_engine = None;
      }
    in
    (* compile once, now: the session's native shapes go warm before the
       first submit, so steady-state submits are pure cache hits *)
    let base_engine = bucket_engine t (make_shard ~cached:true) base in
    (try
       for _ = 1 to warmup_runs do
         ignore (Engine.run base_engine native_args)
       done
     with _ -> ());
    let t =
      match w.Workload.batching with
      | None -> t
      | Some bx -> (
          match build_buckets t w bx ~batch ~seq ~base_engine with
          | [] -> { t with s_batching = None }
          | bks ->
              let buckets =
                List.sort (fun a b -> compare b.bk_size a.bk_size) (base :: bks)
              in
              let largest = (List.hd buckets).bk_size in
              {
                t with
                s_buckets = buckets;
                s_dispatch_limit = max config.Config.max_batch largest;
                s_bucket_counters =
                  List.map
                    (fun bk ->
                      ( bk.bk_size,
                        Metrics.counter
                          (Printf.sprintf "serve.bucket.b%d" bk.bk_size) ))
                    buckets;
              })
    in
    t.s_dispatchers <-
      [ Domain.spawn (fun () -> dispatch_loop t (make_shard ~cached:true)) ];
    t
  with
  | t -> Ok t
  | exception Functs_frontend.Lower.Lowering_error m ->
      Error (Error.Lowering_error m)
  | exception Eval.Runtime_error m -> Error (Error.Runtime_error m)
  | exception exn -> Error (Error.Engine_failure (Printexc.to_string exn))

let submit t { in_args = args; in_deadline_us = deadline_us } =
  let now = Unix.gettimeofday () in
  let tk =
    {
      t_id = Atomic.fetch_and_add next_ticket_id 1;
      t_args = args;
      t_shape = shape_signature args;
      t_deadline = Option.map (fun d -> now +. (1e-6 *. d)) deadline_us;
      t_enq = now;
      t_deq = 0.;
      t_batched = 0.;
      t_engine = 0.;
      t_rundone = 0.;
      t_lock = Mutex.create ();
      t_cond = Condition.create ();
      t_claimed = false;
      t_result = None;
      t_done = 0.;
    }
  in
  Tracer.span_args "serve.submit"
    ~args:(fun () -> [ ("ticket", string_of_int tk.t_id) ])
    (fun () ->
      locked t (fun () ->
          if t.s_closing then Error Error.Session_closed
          else if Queue.length t.s_queue >= t.s_config.Config.queue_capacity
          then begin
            t.s_stats <- { t.s_stats with overloaded = t.s_stats.overloaded + 1 };
            Metrics.incr m_overloaded;
            Error Error.Overloaded
          end
          else begin
            Queue.add tk t.s_queue;
            let depth = Queue.length t.s_queue in
            t.s_stats <-
              {
                t.s_stats with
                submitted = t.s_stats.submitted + 1;
                max_queue_depth = max t.s_stats.max_queue_depth depth;
              };
            Metrics.incr m_submitted;
            Metrics.set g_queue_depth (float_of_int depth);
            if float_of_int depth > Metrics.gauge_value g_queue_peak then
              Metrics.set g_queue_peak (float_of_int depth);
            (* scale out: a queue holding more than two full dispatch
               rounds means the current shards can't keep up — spawn
               another dispatcher with private engines, up to the
               configured cap.  Spawned under the session lock, so close
               (same lock) can never miss a join. *)
            let live_shards = t.s_stats.shards in
            if
              depth > 2 * t.s_dispatch_limit
              && live_shards < t.s_config.Config.shards
              && not t.s_paused
            then begin
              t.s_stats <- { t.s_stats with shards = live_shards + 1 };
              Journal.record Tuner_pin "serve.shards"
                ~arm:(string_of_int (live_shards + 1))
                ~detail:(Printf.sprintf "queue_depth=%d" depth)
                ~value:(float_of_int depth);
              t.s_dispatchers <-
                Domain.spawn (fun () ->
                    dispatch_loop t (make_shard ~cached:false))
                :: t.s_dispatchers
            end;
            (* arrow tail lives inside this submit span; the head is in
               the dispatcher's batch span on another domain *)
            Tracer.flow_start "serve.req" ~id:tk.t_id;
            Condition.broadcast t.s_wake;
            Ok tk
          end))

let await tk =
  Mutex.lock tk.t_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock tk.t_lock)
    (fun () ->
      while tk.t_result = None do
        Condition.wait tk.t_cond tk.t_lock
      done;
      Option.get tk.t_result)

let poll tk =
  Mutex.lock tk.t_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tk.t_lock) (fun () -> tk.t_result)

let cancel tk =
  Mutex.lock tk.t_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock tk.t_lock)
    (fun () ->
      if tk.t_claimed || tk.t_result <> None then false
      else begin
        tk.t_claimed <- true;
        tk.t_result <- Some (Error Error.Cancelled);
        tk.t_done <- Unix.gettimeofday ();
        Condition.broadcast tk.t_cond;
        true
      end)

let run t ?deadline_us args =
  match submit t (input ?deadline_us args) with
  | Error _ as e -> e
  | Ok tk -> await tk

let latency_us tk = if tk.t_done = 0. then 0. else 1e6 *. (tk.t_done -. tk.t_enq)
let ticket_id tk = tk.t_id

let ticket_stages tk =
  let stage name a b = if a > 0. && b >= a then [ (name, 1e6 *. (b -. a)) ] else [] in
  stage "queue_wait" tk.t_enq tk.t_deq
  @ stage "batch" tk.t_deq tk.t_engine
  @ stage "exec" tk.t_engine tk.t_rundone
  @ stage "total" tk.t_enq tk.t_done

let bucket_sizes t = List.rev_map (fun bk -> bk.bk_size) t.s_buckets

let pause t =
  locked t (fun () ->
      t.s_paused <- true;
      Condition.broadcast t.s_wake)

let resume t =
  locked t (fun () ->
      t.s_paused <- false;
      Condition.broadcast t.s_wake)

let close t =
  let ds =
    locked t (fun () ->
        t.s_closing <- true;
        t.s_paused <- false;
        Condition.broadcast t.s_wake;
        let ds = t.s_dispatchers in
        t.s_dispatchers <- [];
        ds)
  in
  List.iter Domain.join ds

let stats t = locked t (fun () -> t.s_stats)

let attribution t =
  match t.s_engine with None -> [] | Some eng -> Engine.attribution eng

let engine_stats t = Option.map Engine.stats t.s_engine
