(** The structured error taxonomy of the public [Functs] surface.

    Every failure a caller can meet at the frontend / engine / serving
    boundaries is one constructor here, replacing the raised [Failure]s
    and ad-hoc [Error string]s of the pre-facade entry points.  The
    groups:

    - {e lookup} — [Unknown_workload], [Unknown_profile]: a name did not
      resolve; both carry the valid names so CLIs can print suggestions;
    - {e configuration} — [Invalid_config]: a [FUNCTS_*] variable (or an
      explicit override) failed validation; carries the key, the
      offending value and the reason;
    - {e compilation} — [Parse_error], [Lowering_error]: the frontend
      rejected a source program;
    - {e execution} — [Runtime_error] (interpreter semantics violated),
      [Engine_failure] (the fused engine raised and the session policy
      was [`Shed]);
    - {e serving} — [Overloaded] (bounded submit queue full — the
      backpressure signal), [Deadline_exceeded] (request expired under
      the [`Shed] policy), [Cancelled] (the caller cancelled the ticket
      before it executed), [Session_closed] (submit after close);
    - [Io_error] — a result file could not be read or written. *)

type t =
  | Unknown_workload of { name : string; available : string list }
  | Unknown_profile of { name : string; available : string list }
  | Invalid_config of { key : string; value : string; reason : string }
  | Parse_error of { source : string; message : string }
  | Lowering_error of string
  | Runtime_error of string
  | Engine_failure of string
  | Overloaded
  | Deadline_exceeded
  | Cancelled
  | Session_closed
  | Io_error of string

val to_string : t -> string
(** One-line human rendering, e.g.
    ["unknown workload \"lstm2\" (try: yolov3, ssd, …)"]. *)
