(** Registry of figure/table renderers, so the CLI and the bench consume
    evaluation reports through the [Functs] facade without a compile-time
    dependency on the harness (which itself sits {e above} the facade).

    [Functs_harness.Figures] registers its renderers at module-init time
    (the harness library is linked with [-linkall] so registration always
    runs); [render] then serves them by name. *)

val register : string -> (unit -> string) -> unit
(** Idempotent per name — the latest registration wins.  Registration
    order is preserved for {!names}. *)

val render : string -> string option
(** [None] when no renderer carries that name. *)

val names : unit -> string list

val set_checker : (unit -> bool) -> unit
(** The harness installs its "did every cached measurement match the
    eager reference" predicate here. *)

val checks_passed : unit -> bool
(** [true] when no checker is installed. *)
