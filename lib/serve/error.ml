type t =
  | Unknown_workload of { name : string; available : string list }
  | Unknown_profile of { name : string; available : string list }
  | Invalid_config of { key : string; value : string; reason : string }
  | Parse_error of { source : string; message : string }
  | Lowering_error of string
  | Runtime_error of string
  | Engine_failure of string
  | Overloaded
  | Deadline_exceeded
  | Cancelled
  | Session_closed
  | Io_error of string

let to_string = function
  | Unknown_workload { name; available } ->
      Printf.sprintf "unknown workload %S (try: %s)" name
        (String.concat ", " available)
  | Unknown_profile { name; available } ->
      Printf.sprintf "unknown pipeline %S (try: %s)" name
        (String.concat ", " available)
  | Invalid_config { key; value; reason } ->
      Printf.sprintf "invalid %s=%S: %s" key value reason
  | Parse_error { source; message } ->
      Printf.sprintf "parse error in %s: %s" source message
  | Lowering_error m -> "lowering error: " ^ m
  | Runtime_error m -> "runtime error: " ^ m
  | Engine_failure m -> "engine failure: " ^ m
  | Overloaded -> "overloaded: the session's submit queue is full"
  | Deadline_exceeded -> "deadline exceeded before dispatch"
  | Cancelled -> "request cancelled by the caller"
  | Session_closed -> "session is closed"
  | Io_error m -> "i/o error: " ^ m
