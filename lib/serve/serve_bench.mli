(** The [functs serve-bench] driver: N producer domains hammer one
    session and the run reports throughput and latency percentiles.

    Each producer submits [submits] requests (retrying with backoff on
    [Overloaded] — backpressure is part of the measurement), awaits every
    ticket, and verifies the first response against the reference
    interpreter.  After a warm-up phase the [engine.cache.*] miss counter
    is snapshotted; a warm session must never recompile, so any miss
    during the timed phase fails the run.

    Percentiles come from the in-process log-bucketed
    [serve.latency.{queue_wait,batch,exec,total}_us] histograms — the
    registry is snapshotted before and after the timed phase and the
    bench reads {!Metrics.percentile} off the {!Metrics.diff} window;
    no latency array is collected or sorted.

    Results land in the ["serve"] member of [BENCH_exec.json] (the file
    is read-modify-written, so the bench harness's own members survive),
    shaped like:

    {v
    "serve": { "workload": …, "producers": N, "submits_per_producer": M,
               "requests": N*M, "wall_s": …, "throughput_rps": …,
               "p50_us": …, "p90_us": …, "p99_us": …,
               "stages": { "queue_wait": {"count":…, "p50_us":…, "p90_us":…,
                           "p99_us":…, "mean_us":…}, "batch": …,
                           "exec": …, "total": … },
               "overload_retries": …, "warm_cache_misses": 0,
               "warm_cache_hits": …, "batches": …, "max_queue_depth": … }
    v} *)

module Metrics = Functs_obs.Metrics

type result = {
  sb_workload : string;
  sb_producers : int;
  sb_submits : int;  (** per producer *)
  sb_requests : int;
  sb_wall_s : float;
  sb_throughput_rps : float;
  sb_p50_us : float;
  sb_p90_us : float;
  sb_p99_us : float;
  sb_stages : (string * Metrics.hstat) list;
      (** per-stage windows ([queue_wait] / [batch] / [exec] / [total])
          over the timed phase; feed to {!Metrics.percentile} *)
  sb_overload_retries : int;
  sb_warm_hits : int;  (** engine.cache hit delta during the timed phase *)
  sb_warm_misses : int;  (** must be 0 — warm submits never recompile *)
  sb_stats : Session.stats;
}

val run :
  ?config:Config.t ->
  ?workload:string ->
  ?producers:int ->
  ?submits:int ->
  ?deadline_us:float ->
  ?json_path:string ->
  unit ->
  (result, Error.t) Stdlib.result
(** Defaults: the [lstm] workload, 4 producers, 64 submits each,
    no deadline, [json_path = "BENCH_exec.json"].  Returns
    [Error (Engine_failure …)] when outputs diverge from the
    interpreter or a warm submit recompiled. *)

val to_text : result -> string
(** Human summary (printed by the CLI). *)
