(** The [functs serve-bench] driver: closed-loop producer domains plus an
    optional open-loop Poisson sweep against one session.

    {b Closed loop} — each of [producers] domains submits [submits]
    requests keeping up to [window] tickets in flight (awaiting the
    oldest when the window fills; deep windows are what let the
    dispatcher fill its largest batch bucket), then drains.  The first
    response of each producer is verified against the reference
    interpreter.  After a warm-up request the [engine.cache.*] miss
    counter is snapshotted; a warm session must never recompile, so any
    miss during the timed phase fails the run.

    {b Open loop} — for each target in [open_rps], arrivals are generated
    by a deterministic Poisson process (exponential inter-arrival times)
    for [open_duration_s] seconds.  Submits never wait on completions:
    a full queue {e drops} the arrival (counted as rejected) instead of
    stalling the clock, which is what makes the sweep open-loop.  After a
    full drain the point reports achieved rps, latency percentiles,
    per-stage windows, and the SLO ratio (accepted requests that were
    served without expiring).

    Percentiles come from the in-process log-bucketed
    [serve.latency.{queue_wait,batch,exec,total}_us] histograms — the
    registry is snapshotted around each phase and the bench reads
    {!Metrics.percentile} off the {!Metrics.diff} window; no latency
    array is collected or sorted.

    Results land in the ["serve"] member of [BENCH_exec.json] (the file
    is read-modify-written, so the bench harness's own members survive),
    shaped like:

    {v
    "serve": { "workload": …, "producers": N, "submits_per_producer": M,
               "window": W, "requests": N*M, "wall_s": …,
               "throughput_rps": …, "p50_us": …, "p90_us": …, "p99_us": …,
               "stages": { "queue_wait": {"count":…, "p50_us":…, …},
                           "batch": …, "exec": …, "total": … },
               "batch_buckets": { "b1": …, "b4": …, "b16": … },
               "batched_runs": …, "shards": …, "overload_retries": …,
               "warm_cache_misses": 0, "warm_cache_hits": …,
               "batches": …, "max_queue_depth": …, "cancelled": …,
               "open_loop": [ { "target_rps": …, "achieved_rps": …,
                                "offered": …, "accepted": …, "rejected": …,
                                "p50_us": …, "p99_us": …,
                                "deadline_expired": …, "slo_ok_pct": …,
                                "stages": { … } }, … ] }
    v} *)

module Metrics = Functs_obs.Metrics

type open_point = {
  op_target_rps : float;
  op_offered : int;  (** arrivals generated *)
  op_accepted : int;  (** submits the queue admitted *)
  op_rejected : int;  (** arrivals dropped by backpressure *)
  op_wall_s : float;  (** generation + drain *)
  op_achieved_rps : float;
  op_p50_us : float;
  op_p90_us : float;
  op_p99_us : float;
  op_deadline_expired : int;
  op_slo_ok_pct : float;  (** accepted requests served within deadline *)
  op_stages : (string * Metrics.hstat) list;
}

type result = {
  sb_workload : string;
  sb_producers : int;
  sb_submits : int;  (** per producer *)
  sb_window : int;  (** max tickets in flight per producer *)
  sb_requests : int;
  sb_wall_s : float;
  sb_throughput_rps : float;
  sb_p50_us : float;
  sb_p90_us : float;
  sb_p99_us : float;
  sb_stages : (string * Metrics.hstat) list;
      (** per-stage windows ([queue_wait] / [batch] / [exec] / [total])
          over the timed phase; feed to {!Metrics.percentile} *)
  sb_overload_retries : int;
  sb_warm_hits : int;  (** engine.cache hit delta during the timed phase *)
  sb_warm_misses : int;  (** must be 0 — warm submits never recompile *)
  sb_bucket_sizes : int list;  (** buckets the session compiled, ascending *)
  sb_open_loop : open_point list;  (** one per [open_rps] target *)
  sb_stats : Session.stats;
}

val run :
  ?config:Config.t ->
  ?workload:string ->
  ?producers:int ->
  ?submits:int ->
  ?window:int ->
  ?deadline_us:float ->
  ?open_rps:float list ->
  ?open_duration_s:float ->
  ?json_path:string ->
  unit ->
  (result, Error.t) Stdlib.result
(** Defaults: the [lstm] workload, 4 producers, 64 submits each, a
    32-ticket window, no deadline, no open-loop sweep (pass [open_rps]
    targets to enable it, each running [open_duration_s] seconds,
    default 2.0), [json_path = "BENCH_exec.json"].  Returns
    [Error (Engine_failure …)] when outputs diverge from the
    interpreter or a warm submit recompiled. *)

val to_text : result -> string
(** Human summary (printed by the CLI). *)
