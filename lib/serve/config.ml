module Engine = Functs_exec.Engine
module Jit = Functs_jit.Jit
module Tracer = Functs_obs.Tracer
module Metrics = Functs_obs.Metrics
module Journal = Functs_obs.Journal

type trace_sink = Trace_off | Trace_on | Trace_file of string
type metrics_sink = Metrics_off | Metrics_stderr | Metrics_file of string
type policy = [ `Interp_fallback | `Shed ]

type t = {
  domains : int;
  loop_grain : int;
  kernel_grain : int;
  chunk_bytes : int;  (* per-task cache budget; 0 probes sysfs *)
  cache : bool;
  cache_size : int;
  jit : Jit.mode;
  jit_dir : string;
  jit_cc : string;  (* C-lane compiler command; "" keeps the default *)
  trace : trace_sink;
  trace_buf : int;
  metrics : metrics_sink;
  queue_capacity : int;
  max_batch : int;
  batch_buckets : int list;  (* ascending, unique, first element 1 *)
  shards : int;  (* max dispatcher domains per session *)
  policy : policy;
  journal : bool;  (* decision journal (on by default; rare records) *)
  journal_buf : int;  (* journal ring capacity *)
}

let default =
  {
    domains = max 1 (Domain.recommended_domain_count ());
    loop_grain = 2;
    kernel_grain = 8192;
    chunk_bytes = 0;
    cache = true;
    cache_size = 32;
    jit = Jit.Off;
    jit_dir = "";
    jit_cc = "";
    trace = Trace_off;
    trace_buf = 65536;
    metrics = Metrics_off;
    queue_capacity = 256;
    max_batch = 8;
    batch_buckets = [ 1; 4; 16 ];
    shards = 1;
    policy = `Interp_fallback;
    journal = true;
    journal_buf = 4096;
  }

(* --- the single sanctioned FUNCTS_* parser ---

   Validation is strict: a set-but-malformed variable is an error the
   caller must see, not a silent fall-through to the default.  The only
   forgiving case is the empty string, which stands for "unset" because
   Unix.putenv cannot remove a variable. *)

let invalid key value reason = Error (Error.Invalid_config { key; value; reason })

let fold_env getenv init steps =
  List.fold_left
    (fun acc (key, step) ->
      match acc with
      | Error _ as e -> e
      | Ok cfg -> (
          match getenv key with
          | None | Some "" -> Ok cfg
          | Some raw -> step cfg key (String.trim raw)))
    (Ok init) steps

let pos_int ~min_value set cfg key v =
  match int_of_string_opt v with
  | Some n when n >= min_value -> Ok (set cfg n)
  | Some _ ->
      invalid key v (Printf.sprintf "must be an integer >= %d" min_value)
  | None -> invalid key v "not an integer"

let bool_flag set cfg key v =
  match String.lowercase_ascii v with
  | "1" | "on" | "true" | "yes" -> Ok (set cfg true)
  | "0" | "off" | "false" | "no" -> Ok (set cfg false)
  | _ -> invalid key v "expected on/off (or 1/0, true/false, yes/no)"

let trace_sink cfg _key v =
  match String.lowercase_ascii v with
  | "0" | "off" | "false" | "no" -> Ok { cfg with trace = Trace_off }
  | "1" | "on" | "true" -> Ok { cfg with trace = Trace_on }
  | _ -> Ok { cfg with trace = Trace_file v }

let metrics_sink cfg _key v =
  match String.lowercase_ascii v with
  | "0" | "off" | "false" | "no" -> Ok { cfg with metrics = Metrics_off }
  | "1" | "on" | "stderr" -> Ok { cfg with metrics = Metrics_stderr }
  | _ -> Ok { cfg with metrics = Metrics_file v }

let jit_mode cfg key v =
  match Jit.mode_of_string (String.lowercase_ascii v) with
  | Some m -> Ok { cfg with jit = m }
  | None -> invalid key v "expected off, on, auto, c or ocaml"

(* The artifact directory honours the usual cache conventions when the
   variable is unset: $XDG_CACHE_HOME/functs/jit, else
   $HOME/.cache/functs/jit, else "" (which the engine resolves to a
   temp-dir fallback). *)
let resolve_jit_dir getenv cfg =
  if cfg.jit_dir <> "" then cfg
  else
    let dir =
      match getenv "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat (Filename.concat d "functs") "jit"
      | _ -> (
          match getenv "HOME" with
          | Some h when h <> "" ->
              List.fold_left Filename.concat h [ ".cache"; "functs"; "jit" ]
          | _ -> "")
    in
    { cfg with jit_dir = dir }

(* Comma-separated bucket list, e.g. "1,4,16".  Buckets must be strictly
   ascending (which implies unique) and start at 1 so every request mix
   decomposes greedily with a bucket-1 remainder. *)
let bucket_list cfg key v =
  let parts = String.split_on_char ',' v |> List.map String.trim in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match int_of_string_opt p with
        | Some n when n >= 1 -> parse (n :: acc) rest
        | Some _ | None -> invalid key v "buckets must be positive integers")
  in
  match parse [] parts with
  | Error _ as e -> e
  | Ok [] -> invalid key v "expected a comma-separated bucket list"
  | Ok (first :: _ as buckets) ->
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      if first <> 1 then invalid key v "the first bucket must be 1"
      else if not (ascending buckets) then
        invalid key v "buckets must be strictly ascending"
      else Ok { cfg with batch_buckets = buckets }

let policy_of cfg key v =
  match String.lowercase_ascii v with
  | "interp" | "interp_fallback" | "fallback" ->
      Ok { cfg with policy = `Interp_fallback }
  | "shed" -> Ok { cfg with policy = `Shed }
  | _ -> invalid key v "expected interp_fallback or shed"

let of_env ?(base = default) ?(getenv = Sys.getenv_opt) () =
  Result.map (resolve_jit_dir getenv)
  @@ fold_env getenv base
       [
      ("FUNCTS_DOMAINS", pos_int ~min_value:1 (fun c n -> { c with domains = n }));
      ("FUNCTS_GRAIN", pos_int ~min_value:1 (fun c n -> { c with loop_grain = n }));
      ( "FUNCTS_KERNEL_GRAIN",
        pos_int ~min_value:1 (fun c n -> { c with kernel_grain = n }) );
      ( "FUNCTS_CHUNK_BYTES",
        pos_int ~min_value:0 (fun c n -> { c with chunk_bytes = n }) );
      ("FUNCTS_CACHE", bool_flag (fun c b -> { c with cache = b }));
      ( "FUNCTS_CACHE_SIZE",
        pos_int ~min_value:1 (fun c n -> { c with cache_size = n }) );
      ("FUNCTS_JIT", jit_mode);
      ("FUNCTS_JIT_DIR", fun cfg _key v -> Ok { cfg with jit_dir = v });
      ("FUNCTS_JIT_CC", fun cfg _key v -> Ok { cfg with jit_cc = v });
      ("FUNCTS_TRACE", trace_sink);
      ( "FUNCTS_TRACE_BUF",
        pos_int ~min_value:16 (fun c n -> { c with trace_buf = n }) );
      ("FUNCTS_METRICS", metrics_sink);
      ( "FUNCTS_QUEUE",
        pos_int ~min_value:1 (fun c n -> { c with queue_capacity = n }) );
      ( "FUNCTS_MAX_BATCH",
        pos_int ~min_value:1 (fun c n -> { c with max_batch = n }) );
      ("FUNCTS_BATCH_BUCKETS", bucket_list);
      ("FUNCTS_SHARDS", pos_int ~min_value:1 (fun c n -> { c with shards = n }));
      ("FUNCTS_POLICY", policy_of);
      ("FUNCTS_JOURNAL", bool_flag (fun c b -> { c with journal = b }));
      ( "FUNCTS_JOURNAL_BUF",
        pos_int ~min_value:16 (fun c n -> { c with journal_buf = n }) );
    ]

(* --- apply: push process-wide pieces into their owners ---

   The exit hooks are registered exactly once and read [applied], so
   re-applying a different config retargets them instead of stacking
   duplicate dumps. *)

let applied = ref default
let hooks_installed = ref false

let dump_metrics () =
  match !applied.metrics with
  | Metrics_off -> ()
  | Metrics_stderr -> prerr_string (Metrics.to_text (Metrics.snapshot ()))
  | Metrics_file path -> (
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let s = Metrics.snapshot () in
            output_string oc
              (if Filename.check_suffix path ".json" then
                 Metrics.to_json s ^ "\n"
               else Metrics.to_text s))
      with Sys_error _ -> ())

let dump_trace () =
  match !applied.trace with
  | Trace_off | Trace_on -> ()
  | Trace_file path -> ( try Tracer.write_chrome path with Sys_error _ -> ())

let apply cfg =
  applied := cfg;
  Engine.set_cache_default cfg.cache;
  Engine.set_cache_capacity cfg.cache_size;
  Engine.set_jit_default cfg.jit;
  Engine.set_jit_dir_default cfg.jit_dir;
  if cfg.jit_cc <> "" then Jit.set_c_compiler cfg.jit_cc;
  Functs_exec.Pool.set_chunk_bytes cfg.chunk_bytes;
  if Tracer.capacity () <> cfg.trace_buf then Tracer.set_capacity cfg.trace_buf;
  (match cfg.trace with
  | Trace_off -> ()
  | Trace_on | Trace_file _ -> Tracer.enable ());
  if Journal.capacity () <> cfg.journal_buf then
    Journal.set_capacity cfg.journal_buf;
  if cfg.journal then Journal.enable () else Journal.disable ();
  if not !hooks_installed then begin
    hooks_installed := true;
    at_exit dump_trace;
    at_exit dump_metrics
  end

let to_string cfg =
  let sink = function
    | Trace_off -> "off"
    | Trace_on -> "on"
    | Trace_file p -> p
  in
  let msink = function
    | Metrics_off -> "off"
    | Metrics_stderr -> "stderr"
    | Metrics_file p -> p
  in
  String.concat "\n"
    [
      Printf.sprintf "domains        = %d" cfg.domains;
      Printf.sprintf "loop_grain     = %d" cfg.loop_grain;
      Printf.sprintf "kernel_grain   = %d" cfg.kernel_grain;
      Printf.sprintf "chunk_bytes    = %s"
        (if cfg.chunk_bytes = 0 then "(auto)"
         else string_of_int cfg.chunk_bytes);
      Printf.sprintf "cache          = %b" cfg.cache;
      Printf.sprintf "cache_size     = %d" cfg.cache_size;
      Printf.sprintf "jit            = %s" (Jit.mode_to_string cfg.jit);
      Printf.sprintf "jit_dir        = %s"
        (if cfg.jit_dir = "" then "(temp)" else cfg.jit_dir);
      Printf.sprintf "jit_cc         = %s"
        (if cfg.jit_cc = "" then "(default)" else cfg.jit_cc);
      Printf.sprintf "trace          = %s" (sink cfg.trace);
      Printf.sprintf "trace_buf      = %d" cfg.trace_buf;
      Printf.sprintf "metrics        = %s" (msink cfg.metrics);
      Printf.sprintf "queue_capacity = %d" cfg.queue_capacity;
      Printf.sprintf "max_batch      = %d" cfg.max_batch;
      Printf.sprintf "batch_buckets  = %s"
        (String.concat "," (List.map string_of_int cfg.batch_buckets));
      Printf.sprintf "shards         = %d" cfg.shards;
      Printf.sprintf "policy         = %s"
        (match cfg.policy with
        | `Interp_fallback -> "interp_fallback"
        | `Shed -> "shed");
      Printf.sprintf "journal        = %b" cfg.journal;
      Printf.sprintf "journal_buf    = %d" cfg.journal_buf;
    ]
