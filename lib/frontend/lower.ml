open Functs_ir
module StringMap = Map.Make (String)

exception Lowering_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Lowering_error msg)) fmt

let assigned_vars stmts =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order
    end
  in
  let rec walk stmts = List.iter walk_stmt stmts
  and walk_stmt = function
    | Ast.Assign (name, _) | Ast.Aug (name, _, _) -> add name
    | Ast.Store _ | Ast.Aug_store _ | Ast.Fill _ | Ast.Return _ -> ()
    | Ast.If (_, then_, else_) ->
        walk then_;
        walk else_
    | Ast.For (_, _, body) -> walk body
  in
  walk stmts;
  List.rev !order

let is_scalar (v : Graph.value) =
  match v.v_type with
  | Dtype.Scalar _ -> true
  | Dtype.Tensor | Dtype.List _ -> false

let rec lower_expr b env (expr : Ast.expr) : Graph.value =
  match expr with
  | Ast.Var name -> begin
      match StringMap.find_opt name env with
      | Some v -> v
      | None -> error "unbound variable %s" name
    end
  | Ast.Int_lit n -> Builder.int b n
  | Ast.Float_lit x -> Builder.float b x
  | Ast.Bool_lit v -> Builder.bool b v
  | Ast.Unop (fn, e) ->
      let v = lower_expr b env e in
      (* Scalars promote to 0-d tensors, as in torch.neg(-2.0). *)
      let v =
        if is_scalar v then Builder.full b [||] v else v
      in
      Builder.unary b fn v
  | Ast.Binop (fn, e1, e2) ->
      let v1 = lower_expr b env e1 and v2 = lower_expr b env e2 in
      if is_scalar v1 && is_scalar v2 then Builder.scalar_binary b fn v1 v2
      else Builder.binary b fn v1 v2
  | Ast.Subscript (base, indices) ->
      let base_v = lower_expr b env base in
      lower_indices b env base_v indices
  | Ast.Call (fn, args) -> lower_call b env fn args

(* Tuple-style subscripting: each index consumes one dimension; [At]
   removes it, [Range] keeps it. *)
and lower_indices b env base indices =
  let apply (current, dim) index =
    match index with
    | Ast.At e ->
        let idx = lower_expr b env e in
        (Builder.select b current ~dim idx, dim)
    | Ast.Range (e1, e2) ->
        let start = lower_expr b env e1 and stop = lower_expr b env e2 in
        (Builder.slice b current ~dim ~start ~stop (), dim + 1)
  in
  let result, _ = List.fold_left apply (base, 0) indices in
  result

and lower_call b env fn args =
  let one () =
    match args with
    | [ e ] -> lower_expr b env e
    | _ -> error "expected one argument"
  in
  let two () =
    match args with
    | [ e1; e2 ] -> (lower_expr b env e1, lower_expr b env e2)
    | _ -> error "expected two arguments"
  in
  match fn with
  | Ast.Fn_matmul ->
      let a, c = two () in
      Builder.matmul b a c
  | Ast.Fn_softmax dim -> Builder.softmax b (one ()) ~dim
  | Ast.Fn_sum_dim (dim, keepdim) -> Builder.sum_dim b (one ()) ~dim ~keepdim
  | Ast.Fn_max_dim (dim, keepdim) -> Builder.max_dim b (one ()) ~dim ~keepdim
  | Ast.Fn_sum -> Builder.op1 b Op.Sum [ one () ]
  | Ast.Fn_mean -> Builder.op1 b Op.Mean [ one () ]
  | Ast.Fn_cat dim -> Builder.cat b (List.map (lower_expr b env) args) ~dim
  | Ast.Fn_stack dim -> Builder.stack b (List.map (lower_expr b env) args) ~dim
  | Ast.Fn_where -> begin
      match args with
      | [ c; x; y ] ->
          Builder.where b (lower_expr b env c) (lower_expr b env x)
            (lower_expr b env y)
      | _ -> error "where expects three arguments"
    end
  | Ast.Fn_clone -> Builder.clone b (one ())
  | Ast.Fn_cumsum dim -> Builder.op1 b (Op.Cumsum { dim }) [ one () ]
  | Ast.Fn_zeros shape -> Builder.zeros b shape
  | Ast.Fn_ones shape -> Builder.ones b shape
  | Ast.Fn_full shape -> Builder.full b shape (one ())
  | Ast.Fn_reshape shape -> Builder.reshape b (one ()) shape
  | Ast.Fn_permute dims -> Builder.permute b (one ()) dims
  | Ast.Fn_expand sizes -> Builder.expand b (one ()) sizes
  | Ast.Fn_unsqueeze dim -> Builder.unsqueeze b (one ()) ~dim
  | Ast.Fn_squeeze dim -> Builder.squeeze b (one ()) ~dim

let rename name (v : Graph.value) = if v.v_name = "" then v.v_name <- name

(* The mutation target of Store/Aug_store/Fill must be a subscript (or a
   view call) so there is a view to write through. *)
let lower_target b env (target : Ast.expr) =
  match target with
  | Ast.Subscript _ | Ast.Call ((Ast.Fn_reshape _ | Ast.Fn_permute _), _) ->
      lower_expr b env target
  | Ast.Var _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Unop _
  | Ast.Binop _ | Ast.Call _ ->
      error "mutation target must be a view (subscript) expression"

let captured_across env branches =
  List.filter (fun name -> StringMap.mem name env) (assigned_vars branches)

let rec lower_stmts b env stmts ~top =
  match stmts with
  | [] -> env
  | [ Ast.Return es ] when top ->
      let values = List.map (lower_expr b env) es in
      Builder.return b values;
      env
  | Ast.Return _ :: _ ->
      error "return is only allowed as the final top-level statement"
  | stmt :: rest ->
      let env = lower_stmt b env stmt ~top in
      lower_stmts b env rest ~top

and lower_stmt b env stmt ~top =
  ignore top;
  match stmt with
  | Ast.Assign (name, e) ->
      let v = lower_expr b env e in
      rename name v;
      StringMap.add name v env
  | Ast.Store (target, e) ->
      let view = lower_target b env target in
      let src = lower_expr b env e in
      let _ = Builder.copy_ b view src in
      env
  | Ast.Aug (name, fn, e) -> begin
      match StringMap.find_opt name env with
      | None -> error "unbound variable %s" name
      | Some v ->
          if is_scalar v then begin
            let rhs = lower_expr b env e in
            let v' = Builder.scalar_binary b fn v rhs in
            StringMap.add name v' env
          end
          else begin
            (* In-place tensor update: pure op then copy_ (paper Fig. 2). *)
            let rhs = lower_expr b env e in
            let fresh = Builder.binary b fn v rhs in
            let updated = Builder.copy_ b v fresh in
            rename name updated;
            StringMap.add name updated env
          end
    end
  | Ast.Aug_store (target, fn, e) ->
      let view = lower_target b env target in
      let src = lower_expr b env e in
      let _ = Builder.binary_ b fn view src in
      env
  | Ast.Fill (target, c) ->
      let view = lower_target b env target in
      let cv = Builder.float b c in
      let _ = Builder.fill_ b view cv in
      env
  | Ast.Return _ -> error "return is only allowed as the final top-level statement"
  | Ast.If (cond, then_stmts, else_stmts) ->
      let cond_v = lower_expr b env cond in
      let captured = captured_across env (then_stmts @ else_stmts) in
      let out_types =
        List.map
          (fun name -> (StringMap.find name env).Graph.v_type)
          captured
      in
      let branch stmts () =
        let env' = lower_stmts b env stmts ~top:false in
        List.map (fun name -> StringMap.find name env') captured
      in
      let outs =
        Builder.if_ b ~cond:cond_v ~out_types ~then_:(branch then_stmts)
          ~else_:(branch else_stmts)
      in
      List.fold_left2
        (fun env name v ->
          rename name v;
          StringMap.add name v env)
        env captured outs
  | Ast.For (loop_var, trip, body) ->
      let trip_v = lower_expr b env trip in
      let captured = captured_across env body in
      let init = List.map (fun name -> StringMap.find name env) captured in
      let outs =
        Builder.loop b ~trip:trip_v ~init ~body:(fun ~i ~carried ->
            let env' = StringMap.add loop_var i env in
            let env' =
              List.fold_left2
                (fun acc name v -> StringMap.add name v acc)
                env' captured carried
            in
            let env'' = lower_stmts b env' body ~top:false in
            List.map (fun name -> StringMap.find name env'') captured)
      in
      List.fold_left2
        (fun env name v ->
          rename name v;
          StringMap.add name v env)
        env captured outs

let program (p : Ast.program) =
  Functs_obs.Tracer.span_args "frontend.lower"
    ~args:(fun () -> [ ("program", p.name) ])
  @@ fun () ->
  let b = Builder.create p.name ~params:p.params in
  let env =
    List.fold_left2
      (fun env (name, _) v -> StringMap.add name v env)
      StringMap.empty p.params (Graph.params (Builder.graph b))
  in
  let _ = lower_stmts b env p.body ~top:true in
  let g = Builder.graph b in
  Verifier.check_exn g;
  g
