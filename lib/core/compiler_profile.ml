open Functs_ir

type op_class = Free | Fusible | Kernel | Break | Control

type runtime = Python_eager | Torchscript | Dynamo

type t = {
  name : string;
  short_name : string;
  functionalize : bool;
  horizontal : bool;
  parallel_reductions : bool;
  runtime : runtime;
  classify : Op.t -> op_class;
}

(* Structural operators cost nothing on every pipeline. *)
let structural (op : Op.t) =
  match op with
  | Op.Constant _ | Op.Scalar_binary _ | Op.List_construct | Op.List_index
  | Op.Update ->
      Some Free
  | Op.If | Op.Loop -> Some Control
  | _ -> None

let classify_eager op =
  match structural op with
  | Some c -> c
  | None -> begin
      match op with
      | Op.View _ -> Free (* descriptor update; dispatch cost only *)
      | _ -> Kernel
    end

(* TorchScript + NNC: element-wise chains fuse; views (pre-functionalization)
   and mutations break them. *)
let classify_ts_nnc op =
  match structural op with
  | Some c -> c
  | None -> begin
      match op with
      | Op.Unary _ | Op.Binary _ -> Fusible
      | Op.View _ -> Break
      | _ -> Kernel
    end

(* TorchScript + nvFuser: additionally fuses broadcasting shape views and
   trailing reductions, but still breaks on data views and mutations. *)
let classify_ts_nvfuser op =
  match structural op with
  | Some c -> c
  | None -> begin
      match op with
      | Op.Unary _ | Op.Binary _ | Op.Where -> Fusible
      | Op.Softmax _ | Op.Sum_dim _ | Op.Max_dim _ -> Fusible
      | Op.View (Op.Expand _ | Op.Unsqueeze _ | Op.Squeeze _) -> Fusible
      | Op.View
          (Op.Identity | Op.Select _ | Op.Slice _ | Op.Reshape _ | Op.Permute _)
        ->
          Break
      | _ -> Kernel
    end

(* TorchDynamo + TorchInductor: data-flow functionalization (functorch)
   makes views and mutations fusible inside a straight-line region; the
   Dynamo runtime pays for control flow instead. *)
let classify_dynamo op =
  match structural op with
  | Some c -> c
  | None -> begin
      match op with
      | Op.Unary _ | Op.Binary _ | Op.Where | Op.Clone -> Fusible
      | Op.View _ | Op.Mutate _ | Op.Access _ | Op.Assign _ -> Fusible
      | Op.Softmax _ | Op.Sum_dim _ | Op.Max_dim _ -> Fusible
      | _ -> Kernel
    end

(* TensorSSA: after holistic functionalization the immut:: operators fuse
   freely; any view/mutation left in unsafe components still breaks. *)
let classify_tensorssa op =
  match structural op with
  | Some c -> c
  | None -> begin
      match op with
      | Op.Unary _ | Op.Binary _ | Op.Where | Op.Clone -> Fusible
      | Op.Access _ | Op.Assign _ -> Fusible
      | Op.Softmax _ | Op.Sum_dim _ | Op.Max_dim _ -> Fusible
      | Op.View _ -> Break
      | _ -> Kernel
    end

let eager =
  {
    name = "PyTorch eager";
    short_name = "Eager";
    functionalize = false;
    horizontal = false;
    parallel_reductions = false;
    runtime = Python_eager;
    classify = classify_eager;
  }

let ts_nnc =
  {
    name = "TorchScript + NNC";
    short_name = "TS+NNC";
    functionalize = false;
    horizontal = false;
    parallel_reductions = false;
    runtime = Torchscript;
    classify = classify_ts_nnc;
  }

let ts_nvfuser =
  {
    name = "TorchScript + nvFuser";
    short_name = "TS+nvFuser";
    functionalize = false;
    horizontal = false;
    parallel_reductions = false;
    runtime = Torchscript;
    classify = classify_ts_nvfuser;
  }

let dynamo_inductor =
  {
    name = "TorchDynamo + TorchInductor";
    short_name = "Dynamo+Inductor";
    functionalize = false;
    horizontal = false;
    parallel_reductions = false;
    runtime = Dynamo;
    classify = classify_dynamo;
  }

let tensorssa =
  {
    name = "TensorSSA (ours)";
    short_name = "TensorSSA";
    functionalize = true;
    horizontal = true;
    parallel_reductions = true;
    runtime = Torchscript;
    classify = classify_tensorssa;
  }

let all = [ eager; ts_nnc; ts_nvfuser; dynamo_inductor; tensorssa ]
let baselines = [ eager; ts_nnc; ts_nvfuser; dynamo_inductor ]

let tensorssa_no_horizontal =
  {
    tensorssa with
    name = "TensorSSA w/o horizontal parallelization";
    short_name = "TensorSSA-noH";
    horizontal = false;
  }

let tensorssa_no_fusion =
  {
    tensorssa with
    name = "TensorSSA w/o vertical fusion";
    short_name = "TensorSSA-noV";
    horizontal = false;
    classify =
      (fun op ->
        match classify_tensorssa op with Fusible -> Kernel | c -> c);
  }

let tensorssa_no_reduction =
  {
    tensorssa with
    name = "TensorSSA w/o parallel reductions";
    short_name = "TensorSSA-noR";
    parallel_reductions = false;
  }

(* --- compile-cache counters ---

   The counters themselves live in the process-wide metrics registry
   ({!Functs_obs.Metrics}); this module only names them, so the engine
   (which increments) and every reader (CLI, bench, tests) share one
   record without a layering dependency on the engine. *)

module Metrics = Functs_obs.Metrics

let cache_hits_c = Metrics.counter "engine.cache.hits"
let cache_misses_c = Metrics.counter "engine.cache.misses"
let cache_evictions_c = Metrics.counter "engine.cache.evictions"

let cache_hit () = Metrics.incr cache_hits_c
let cache_miss () = Metrics.incr cache_misses_c
let cache_eviction () = Metrics.incr cache_evictions_c

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

let cache_snapshot () =
  {
    cache_hits = Metrics.value cache_hits_c;
    cache_misses = Metrics.value cache_misses_c;
    cache_evictions = Metrics.value cache_evictions_c;
  }

let reset_compile_cache () =
  Metrics.reset_counter cache_hits_c;
  Metrics.reset_counter cache_misses_c;
  Metrics.reset_counter cache_evictions_c

let find short =
  List.find_opt
    (fun p -> String.lowercase_ascii p.short_name = String.lowercase_ascii short)
    (all @ [ tensorssa_no_horizontal; tensorssa_no_fusion; tensorssa_no_reduction ])
