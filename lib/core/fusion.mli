(** Kernel-fusion planning (paper §4.2).

    Given a graph and a compiler profile ({!Compiler_profile.t}), assign
    every node a {e kernel class}:

    - [No_cost] — metadata-only at runtime (constants, scalar arithmetic
      in compiled modes, aliasing views in modes that execute them as
      descriptor updates);
    - [Kernel of group] — the node launches work on the device; nodes
      sharing a group id execute as one fused kernel per dynamic pass.

    Vertical fusion groups are maximal consecutive runs of fusible nodes
    within a block (interleaved [No_cost] nodes do not break a run) —
    consecutive pure operators can always legally fuse, and mutation or
    opaque operators break the run, which reproduces each baseline's
    graph-break behaviour.

    Horizontal parallelization classifies every [prim::Loop] with the
    {!Loop_par} dependence analysis: [Parallel] loops batch iterations
    across domains on shared buffers, [Reduction] loops split into
    chunked partial accumulators, and [Sequential] loops record why they
    could not be parallelized.  Profile knobs ([horizontal],
    [parallel_reductions]) can only demote verdicts. *)

open Functs_ir

type kernel_class = No_cost | Kernel of int  (** group id *)

type plan = {
  classes : (int, kernel_class) Hashtbl.t;  (** node id → class *)
  group_count : int;
  parallel_loops : (int, unit) Hashtbl.t;
      (** node ids of loops safe to batch ([Parallel] or [Reduction]) *)
  loop_verdicts : (int, Loop_par.verdict) Hashtbl.t;
      (** node id → dependence-analysis verdict, for every loop *)
  escaping : (int, unit) Hashtbl.t;
      (** ids of values crossing a fusion-group boundary (read from outside
          the group or written for consumers outside it) *)
}

val plan : ?fence_loop_assigns:bool -> Compiler_profile.t -> Graph.t -> plan
(** Build the fusion plan.  [fence_loop_assigns] (default [false])
    splits each [immut::assign] inside a loop body into a singleton
    group so the surrounding compute chain stays kernel-eligible while
    the assign can donate — the execution engine's grouping; the cost
    model and figures keep the default, whose group count matches the
    paper's launch accounting. *)

val kernel_class_of : plan -> Graph.node -> kernel_class

val is_parallel_loop : plan -> Graph.node -> bool
(** Whether the loop may execute batched ([Parallel] or [Reduction]). *)

val loop_verdict : plan -> Graph.node -> Loop_par.verdict
(** The recorded verdict (profile demotions applied). *)

val value_escapes : plan -> Graph.value -> bool
(** Whether a fused-group value must be materialized to memory. *)

val group_sizes : plan -> (int * int) list
(** [(group_id, member_count)] for statistics and tests. *)
