open Functs_ir
module Scalar = Functs_tensor.Scalar

(* Affine form [a·i + b] of a scalar value in the induction variable. *)
type affine = { a : int; b : int }

type operand = { o_v : Graph.value; o_aff : affine option }

(* One component of a subscript path, in analyzable form. *)
type comp =
  | Csel of { dim : int; idx : operand }
  | Cslice of { dim : int; step : int; lo : operand; hi : operand }
  | Copaque

type step = { st_kind : Op.view_kind; st_ops : Graph.value list }

type write = {
  w_slot : int;
  w_steps : step list;
  w_leaf : step;
  w_src : Graph.value;
}

type role =
  | Sliced
  | Reduced of {
      op : Functs_tensor.Scalar.binary;
      acc_pos : int;
      combine : Graph.node;
    }
  | Passthrough

type info = {
  roles : role array;
  writes : (int, write) Hashtbl.t;
  skips : (int, unit) Hashtbl.t;
}

type verdict =
  | Parallel of info
  | Reduction of Functs_tensor.Scalar.binary * info
  | Sequential of string

(* An in-body alias of a carried tensor: the slot it descends from, the
   component path from the carried value down to the alias, and the
   slot's write count at the alias's birth (stale aliases — created
   before a later write — must never be read). *)
type alias = { al_slot : int; al_comps : comp list; al_born : int }

(* A data read of a carried slot: confinement is checked against the
   slot's write witness, staleness against the write counts. *)
type read_ev = {
  r_slot : int;
  r_comps : comp list;
  r_born : int;
  r_at : int;
  mutable r_exempt : bool;
}

(* A version-creating write (an [immut::assign] whose base is the
   current version of a carried slot). *)
type write_ev = {
  we_node : Graph.node;
  we_slot : int;
  we_kind : Op.view_kind;
  we_ops : Graph.value list;
  we_src : Graph.value;
}

exception Reject of string

let reject fmt = Format.kasprintf (fun m -> raise (Reject m)) fmt

let analyze g (node : Graph.node) (body : Graph.block) =
  let i_param, carried =
    match body.Graph.b_params with
    | i :: rest -> (i, Array.of_list rest)
    | [] -> reject "loop body without an induction parameter"
  in
  let nslots = Array.length carried in
  if nslots = 0 then reject "no carried values";
  Array.iter
    (fun (p : Graph.value) ->
      if not (Dtype.equal p.v_type Dtype.Tensor) then
        reject "non-tensor carried value %%%s" p.v_name)
    carried;
  if List.length body.b_returns <> nslots then
    reject "carried arity mismatch between params and returns";
  if List.length node.n_inputs <> nslots + 1 then
    reject "loop input arity mismatch";
  (* --- affine index expressions --- *)
  let aff_memo : (int, affine option) Hashtbl.t = Hashtbl.create 16 in
  let rec affine_of (v : Graph.value) =
    if v == i_param then Some { a = 1; b = 0 }
    else
      match Hashtbl.find_opt aff_memo v.v_id with
      | Some r -> r
      | None ->
          (* conservative placeholder also guards against cycles *)
          Hashtbl.add aff_memo v.v_id None;
          let r =
            match v.v_origin with
            | Graph.Def (n, _) -> (
                match (n.n_op, n.n_inputs) with
                | Op.Constant (Op.Cint k), _ -> Some { a = 0; b = k }
                | Op.Scalar_binary op, [ x; y ] -> (
                    match (affine_of x, affine_of y) with
                    | Some fx, Some fy -> (
                        match op with
                        | Scalar.Add -> Some { a = fx.a + fy.a; b = fx.b + fy.b }
                        | Scalar.Sub -> Some { a = fx.a - fy.a; b = fx.b - fy.b }
                        | Scalar.Mul when fx.a = 0 || fy.a = 0 ->
                            Some
                              {
                                a = (fx.a * fy.b) + (fy.a * fx.b);
                                b = fx.b * fy.b;
                              }
                        | _ -> None)
                    | _ -> None)
                | _ -> None)
            | Graph.Param _ | Graph.Detached -> None
          in
          Hashtbl.replace aff_memo v.v_id r;
          r
  in
  let operand v = { o_v = v; o_aff = affine_of v } in
  let comp_of kind ops =
    match (kind, ops) with
    | Op.Select { dim }, [ idx ] -> Csel { dim; idx = operand idx }
    | Op.Slice { dim; step }, [ lo; hi ] ->
        Cslice { dim; step; lo = operand lo; hi = operand hi }
    | _ -> Copaque
  in
  let operand_equal o1 o2 =
    o1.o_v == o2.o_v
    ||
    match (o1.o_aff, o2.o_aff) with
    | Some f1, Some f2 -> f1.a = f2.a && f1.b = f2.b
    | _ -> false
  in
  let comp_equal c1 c2 =
    match (c1, c2) with
    | Csel s1, Csel s2 -> s1.dim = s2.dim && operand_equal s1.idx s2.idx
    | Cslice s1, Cslice s2 ->
        s1.dim = s2.dim && s1.step = s2.step
        && operand_equal s1.lo s2.lo
        && operand_equal s1.hi s2.hi
    | _ -> false
  in
  let comps_equal l1 l2 =
    List.length l1 = List.length l2 && List.for_all2 comp_equal l1 l2
  in
  let aff_involves = function Some { a; _ } -> a <> 0 | None -> false in
  let involves_i = function
    | Csel { idx; _ } -> aff_involves idx.o_aff
    | Cslice { lo; hi; _ } -> aff_involves lo.o_aff || aff_involves hi.o_aff
    | Copaque -> false
  in
  (* Distinct iterations provably hit disjoint index sets through this
     component.  Only non-negative affine indices qualify: the evaluator
     has no negative-index wraparound, so [a ≥ 1, b ≥ 0] keeps every
     iteration's region distinct and in bounds (bounds themselves are the
     program's own obligation). *)
  let disjoint_by_i = function
    | Csel { idx = { o_aff = Some { a; b }; _ }; _ } -> a >= 1 && b >= 0
    | Cslice
        { step; lo = { o_aff = Some la; _ }; hi = { o_aff = Some ha; _ }; _ }
      ->
        step = 1 && la.a = ha.a && la.a >= 1 && la.b >= 0
        && ha.b - la.b > 0
        && ha.b - la.b <= la.a
    | _ -> false
  in
  (* --- forward walk: versions, aliases, reads, writes --- *)
  let versions : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let latest = Array.copy carried in
  Array.iteri (fun j (p : Graph.value) -> Hashtbl.replace versions p.v_id j) carried;
  let wc = Array.make nslots 0 in
  let aliases : (int, alias) Hashtbl.t = Hashtbl.create 32 in
  let reads = ref [] in
  let pending : (int, read_ev) Hashtbl.t = Hashtbl.create 8 in
  let writes = ref [] in
  let version_of (v : Graph.value) = Hashtbl.find_opt versions v.v_id in
  let alias_of (v : Graph.value) = Hashtbl.find_opt aliases v.v_id in
  let read_value what (v : Graph.value) =
    match version_of v with
    | Some j ->
        if not (v == latest.(j)) then
          reject "%s reads a superseded version of carried slot %d" what j;
        reads :=
          { r_slot = j; r_comps = []; r_born = wc.(j); r_at = wc.(j); r_exempt = false }
          :: !reads
    | None -> (
        match alias_of v with
        | Some al ->
            reads :=
              {
                r_slot = al.al_slot;
                r_comps = al.al_comps;
                r_born = al.al_born;
                r_at = wc.(al.al_slot);
                r_exempt = false;
              }
              :: !reads
        | None -> ())
  in
  let mk_alias out slot comps born =
    Hashtbl.replace aliases out.Graph.v_id
      { al_slot = slot; al_comps = comps; al_born = born }
  in
  List.iter
    (fun (n : Graph.node) ->
      if n.n_blocks <> [] then
        reject "nested control flow (%s)" (Op.name n.n_op);
      match (n.n_op, n.n_inputs, n.n_outputs) with
      | (Op.If | Op.Loop), _, _ -> reject "nested control flow"
      | Op.Mutate _, _, _ -> reject "in-place mutation in loop body"
      | Op.Update, _, _ -> reject "unresolved tssa::update in loop body"
      | Op.Access kind, base :: ops, [ out ] -> begin
          match version_of base with
          | Some j ->
              if not (base == latest.(j)) then
                reject "access through a superseded version of carried slot %d" j;
              mk_alias out j [ comp_of kind ops ] wc.(j)
          | None -> (
              match alias_of base with
              | Some al ->
                  mk_alias out al.al_slot
                    (al.al_comps @ [ comp_of kind ops ])
                    al.al_born
              | None -> ())
        end
      | Op.View _, base :: _, [ out ] -> begin
          (* an aliasing view of a carried tensor: opaque path component *)
          match version_of base with
          | Some j ->
              if not (base == latest.(j)) then
                reject "view of a superseded version of carried slot %d" j;
              mk_alias out j [ Copaque ] wc.(j)
          | None -> (
              match alias_of base with
              | Some al -> mk_alias out al.al_slot (al.al_comps @ [ Copaque ]) al.al_born
              | None -> ())
        end
      | Op.Assign kind, base :: src :: ops, [ out ] -> begin
          read_value "immut::assign source" src;
          match version_of base with
          | Some j ->
              if not (base == latest.(j)) then
                reject "write through a superseded version of carried slot %d" j;
              writes :=
                { we_node = n; we_slot = j; we_kind = kind; we_ops = ops; we_src = src }
                :: !writes;
              wc.(j) <- wc.(j) + 1;
              latest.(j) <- out;
              Hashtbl.replace versions out.v_id j
          | None -> (
              match alias_of base with
              | Some al ->
                  (* A copy-producing assign through an alias reads the
                     aliased region; if it turns out to be a rebuild-chain
                     member the read is subsumed by the outer write and
                     exempted below. *)
                  let ev =
                    {
                      r_slot = al.al_slot;
                      r_comps = al.al_comps;
                      r_born = al.al_born;
                      r_at = wc.(al.al_slot);
                      r_exempt = false;
                    }
                  in
                  Hashtbl.replace pending n.n_id ev;
                  reads := ev :: !reads
              | None -> ())
        end
      | _, inputs, _ -> List.iter (read_value (Op.name n.n_op)) inputs)
    body.b_nodes;
  let writes = List.rev !writes in
  (* --- rebuild-chain recognition ---
     Functionalization lowers [x[a][b][c] = e] to a ladder
       y2 = assign_c(x2, e); y1 = assign_b(x1, y2); y0 = assign_a(x0, y1)
     mirroring the access chain x1 = access_a(x0), x2 = access_b(x1).
     Recognize the ladder from the outermost (version-creating) assign so
     the executor can replay it as one in-place leaf write; the inner
     assigns' base reads are the write itself, not data reads. *)
  let skips : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let wtbl : (int, write) Hashtbl.t = Hashtbl.create 8 in
  let full_paths : (int, comp list) Hashtbl.t = Hashtbl.create 8 in
  let single_use (v : Graph.value) =
    match Graph.uses_in g v with [ _ ] -> true | _ -> false
  in
  List.iter
    (fun we ->
      let rec descend path steps (src : Graph.value) =
        match Graph.defining_node src with
        | Some a -> (
            match (a.n_op, a.n_inputs) with
            | Op.Assign k', base' :: src' :: ops'
              when single_use src
                   && (match alias_of base' with
                      | Some al ->
                          al.al_slot = we.we_slot
                          && comps_equal al.al_comps path
                      | None -> false) ->
                Hashtbl.replace skips a.n_id ();
                (match Hashtbl.find_opt pending a.n_id with
                | Some ev -> ev.r_exempt <- true
                | None -> ());
                descend
                  (path @ [ comp_of k' ops' ])
                  (steps @ [ { st_kind = k'; st_ops = ops' } ])
                  src'
            | _ -> (path, steps, src))
        | None -> (path, steps, src)
      in
      let path, steps, leaf_src =
        descend
          [ comp_of we.we_kind we.we_ops ]
          [ { st_kind = we.we_kind; st_ops = we.we_ops } ]
          we.we_src
      in
      let rec split = function
        | [] -> assert false
        | [ leaf ] -> ([], leaf)
        | s :: rest ->
            let pre, leaf = split rest in
            (s :: pre, leaf)
      in
      let w_steps, w_leaf = split steps in
      Hashtbl.replace wtbl we.we_node.n_id
        { w_slot = we.we_slot; w_steps; w_leaf; w_src = leaf_src };
      Hashtbl.replace full_paths we.we_node.n_id path)
    writes;
  (* --- staleness: no surviving read through a pre-write alias --- *)
  List.iter
    (fun r ->
      if (not r.r_exempt) && r.r_born <> r.r_at then
        reject "stale read of carried slot %d (alias predates a write)" r.r_slot)
    !reads;
  (* --- per-slot roles --- *)
  let find_witness path =
    let rec go prefix_ok = function
      | [] -> None
      | c :: rest ->
          if prefix_ok && involves_i c && disjoint_by_i c then Some c
          else
            go
              (prefix_ok && match c with Cslice _ -> true | _ -> false)
              rest
    in
    go true path
  in
  let read_confined witness comps =
    let rec go prefix_ok = function
      | [] -> false
      | c :: rest ->
          (prefix_ok && comp_equal c witness)
          || go (prefix_ok && match c with Cslice _ -> true | _ -> false) rest
    in
    go true comps
  in
  let rets = Array.of_list body.b_returns in
  let roles =
    Array.mapi
      (fun j (param : Graph.value) ->
        let ret = rets.(j) in
        if wc.(j) > 0 then begin
          (match version_of ret with
          | Some k when k = j ->
              if not (ret == latest.(j)) then
                reject "carried slot %d returns a superseded version" j
          | Some k -> reject "carried slot %d returns slot %d (crossed slots)" j k
          | None -> reject "carried slot %d does not return its own final version" j);
          let slot_writes = List.filter (fun we -> we.we_slot = j) writes in
          let witness_of we =
            match find_witness (Hashtbl.find full_paths we.we_node.n_id) with
            | Some w -> w
            | None ->
                reject
                  "carried slot %d write is not provably disjoint across \
                   iterations"
                  j
          in
          let witness = witness_of (List.hd slot_writes) in
          List.iter
            (fun we ->
              if not (comp_equal (witness_of we) witness) then
                reject "carried slot %d writes partition along different components" j)
            slot_writes;
          List.iter
            (fun (r : read_ev) ->
              if
                (not r.r_exempt) && r.r_slot = j
                && not (read_confined witness r.r_comps)
              then reject "carried slot %d read may overlap other iterations' writes" j)
            !reads;
          Sliced
        end
        else
          match version_of ret with
          | Some k when k <> j ->
              reject "carried slot %d returns slot %d (crossed slots)" j k
          | _ ->
              if ret == param then Passthrough
              else begin
                match Graph.defining_node ret with
                | Some cn -> (
                    match (cn.n_op, cn.n_inputs) with
                    | Op.Binary op, [ x; y ]
                      when (x == param || y == param)
                           && (match op with
                              | Scalar.Add | Scalar.Mul | Scalar.Max
                              | Scalar.Min ->
                                  true
                              | _ -> false) ->
                        let acc_pos = if x == param then 0 else 1 in
                        (match Graph.uses_in g param with
                        | [ Graph.Input (n', k) ] when n' == cn && k = acc_pos
                          ->
                            ()
                        | _ ->
                            reject
                              "carried slot %d accumulator is used outside \
                               its combine"
                              j);
                        (match Graph.uses_in g ret with
                        | [ Graph.Return (b, k) ] when b == body && k = j -> ()
                        | _ ->
                            reject
                              "carried slot %d reduction result leaks out of \
                               the return"
                              j);
                        Reduced { op; acc_pos; combine = cn }
                    | Op.Binary op, _ ->
                        reject
                          "carried slot %d accumulates through \
                           non-associative aten::%s"
                          j (Scalar.binary_name op)
                    | _ ->
                        reject
                          "carried slot %d is recomputed from itself each \
                           iteration"
                          j)
                | None ->
                    reject
                      "carried slot %d is recomputed from itself each iteration"
                      j
              end)
      carried
  in
  let info = { roles; writes = wtbl; skips } in
  let red =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, Reduced { op; _ } -> Some op
        | acc, _ -> acc)
      None roles
  in
  match red with
  | Some op -> Reduction (op, info)
  | None ->
      if Array.exists (function Sliced -> true | _ -> false) roles then
        Parallel info
      else reject "no per-iteration writes or reductions to partition"

let classify (g : Graph.t) (node : Graph.node) : verdict =
  try
    match node.n_blocks with
    | [ body ] -> analyze g node body
    | _ -> Sequential "malformed prim::Loop"
  with Reject m -> Sequential m

let verdict_name = function
  | Parallel _ -> "parallel"
  | Reduction (op, _) -> "reduction(" ^ Scalar.binary_name op ^ ")"
  | Sequential _ -> "sequential"

let reason = function Sequential m -> Some m | Parallel _ | Reduction _ -> None
