(** Cross-iteration dependence analysis for TensorSSA loops.

    Classifies every [prim::Loop] into a three-point lattice:

    - [Parallel] — distinct iterations provably touch disjoint regions of
      the carried tensors, so they can execute concurrently on shared
      buffers and the result is bitwise-identical to sequential order;
    - [Reduction of op] — some carried value is an associative
      accumulator ([add]/[mul]/[max]/[min]) combined exactly once per
      iteration, so the loop splits into chunked partial accumulators
      merged in chunk order;
    - [Sequential of reason] — a genuine loop-carried dependence (or a
      pattern the analysis cannot prove safe); the recorded reason is
      surfaced in traces and [functs stats].

    The proof obligations are discharged on the functionalized form:
    affine index expressions [a·i + b] in the induction variable are
    tracked through [immut::select]/[immut::slice] access and assign
    chains on the carried tensors; a write is disjoint across iterations
    when its component path contains a {e witness} component — a
    select/slice indexed affinely by [i] with unit coefficient-covering
    width, preceded only by rank-preserving slices — and every
    non-rebuild read of the same carried slot is confined to the same
    witness region.  Rebuild chains (the nested
    [y_k = assign(x_k, y_(k+1))] ladders functionalization produces for
    multi-component subscript writes) are recognized so the executor can
    replay them as a single in-place leaf write. *)

open Functs_ir

type step = { st_kind : Op.view_kind; st_ops : Graph.value list }
(** One component of a subscript path: the view kind plus the index
    operand values it consumes ([idx] for select, [lo; hi] for slice). *)

type write = {
  w_slot : int;  (** carried slot the write lands in *)
  w_steps : step list;
      (** view steps from the carried tensor down to the leaf region's
          base, outermost first *)
  w_leaf : step;  (** the region written at the leaf *)
  w_src : Graph.value;  (** the value stored there *)
}
(** Execution descriptor for the outermost [immut::assign] of a write:
    apply [w_steps] as zero-copy views of the carried buffer, then write
    [w_src] through the [w_leaf] region in place. *)

type role =
  | Sliced  (** written through iteration-disjoint slices *)
  | Reduced of {
      op : Functs_tensor.Scalar.binary;
      acc_pos : int;  (** operand position of the accumulator *)
      combine : Graph.node;  (** the [aten::op] folding the accumulator *)
    }
  | Passthrough  (** returned unchanged every iteration *)

type info = {
  roles : role array;  (** per carried slot *)
  writes : (int, write) Hashtbl.t;
      (** outermost [immut::assign] node id → in-place write descriptor *)
  skips : (int, unit) Hashtbl.t;
      (** rebuild-chain assign node ids subsumed by an outer write *)
}

type verdict =
  | Parallel of info
  | Reduction of Functs_tensor.Scalar.binary * info
  | Sequential of string  (** recorded reason *)

val classify : Graph.t -> Graph.node -> verdict
(** [classify g loop] analyzes a [prim::Loop] node of [g].  Anything the
    analysis cannot prove safe — nested control flow, non-affine or
    overlapping subscripts, stale aliases, crossed carried slots,
    non-associative accumulators — yields [Sequential reason]. *)

val verdict_name : verdict -> string
(** ["parallel"], ["reduction(add)"], … or ["sequential"] — for traces
    and stats. *)

val reason : verdict -> string option
(** The recorded reason of a [Sequential] verdict. *)
