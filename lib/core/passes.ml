open Functs_ir
module Tracer = Functs_obs.Tracer
module Metrics = Functs_obs.Metrics

type report = {
  folds : int;
  cse_merged : int;
  dce_removed : int;
  rounds : int;
}

let folds_c = Metrics.counter "passes.folds"
let cse_c = Metrics.counter "passes.cse_merged"
let dce_c = Metrics.counter "passes.dce_removed"
let rounds_c = Metrics.counter "passes.rounds"

let optimize (g : Graph.t) =
  Tracer.span_args "passes.optimize"
    ~args:(fun () -> [ ("graph", g.Graph.g_name) ])
  @@ fun () ->
  let folds = ref 0 and merged = ref 0 and removed = ref 0 and rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < 10 do
    incr rounds;
    let f = Tracer.span "passes.fold" (fun () -> Fold.run g) in
    let c = Tracer.span "passes.cse" (fun () -> Cse.run g) in
    let d = Tracer.span "passes.dce" (fun () -> Dce.removed_count g) in
    folds := !folds + f;
    merged := !merged + c;
    removed := !removed + d;
    progress := f + c + d > 0
  done;
  Metrics.incr ~by:!folds folds_c;
  Metrics.incr ~by:!merged cse_c;
  Metrics.incr ~by:!removed dce_c;
  Metrics.incr ~by:!rounds rounds_c;
  { folds = !folds; cse_merged = !merged; dce_removed = !removed; rounds = !rounds }

let tensorssa_pipeline ?(verify = true) (g : Graph.t) =
  Tracer.span_args "passes.tensorssa_pipeline"
    ~args:(fun () -> [ ("graph", g.Graph.g_name) ])
  @@ fun () ->
  let stats = Convert.functionalize ~verify:false g in
  let report = optimize g in
  if verify then Tracer.span "passes.verify" (fun () -> Verifier.check_exn g);
  (stats, report)
