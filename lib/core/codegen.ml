open Functs_ir
open Functs_tensor

(* --- symbolic index arithmetic --- *)

type ix = Ivar of string | Iconst of int | Iadd of ix * ix | Isub of ix * ix

let iadd a b =
  match (a, b) with
  | Iconst 0, x | x, Iconst 0 -> x
  | Iconst x, Iconst y -> Iconst (x + y)
  | _ -> Iadd (a, b)

let isub a b =
  match (a, b) with
  | x, Iconst 0 -> x
  | Iconst x, Iconst y -> Iconst (x - y)
  | Iadd (x, Iconst c), Iconst d when c = d -> x
  | _ -> Isub (a, b)

let rec ix_to_string = function
  | Ivar s -> s
  | Iconst c -> string_of_int c
  | Iadd (a, b) -> Printf.sprintf "(%s + %s)" (ix_to_string a) (ix_to_string b)
  | Isub (a, b) -> Printf.sprintf "(%s - %s)" (ix_to_string a) (ix_to_string b)

type cond =
  | Ceq of ix * ix
  | Cge of ix * ix
  | Clt of ix * ix
  | Cmod of ix * ix * int

let cond_to_string = function
  | Ceq (a, b) -> Printf.sprintf "%s == %s" (ix_to_string a) (ix_to_string b)
  | Cge (a, b) -> Printf.sprintf "%s >= %s" (ix_to_string a) (ix_to_string b)
  | Clt (a, b) -> Printf.sprintf "%s < %s" (ix_to_string a) (ix_to_string b)
  | Cmod (a, b, s) ->
      Printf.sprintf "(%s - %s) %% %d == 0" (ix_to_string a) (ix_to_string b) s

type cexpr =
  | Cread of Graph.value * ix list
  | Clit of float
  | Cunary of Scalar.unary * cexpr
  | Cbinary of Scalar.binary * cexpr * cexpr
  | Ccond of cond list * cexpr * cexpr
  | Creduce of [ `Sum | `Max ] * string * int * cexpr
  | Copaque of string

type statement = {
  s_out : Graph.value;
  s_rank : int;
  s_store : bool;
  s_expr : cexpr;
}

type kernel = {
  k_name : string;
  k_group : int;
  k_inputs : (string * Graph.value) list;
  k_outputs : (string * Graph.value) list;
  k_stmts : statement list;
}

(* --- naming and shapes --- *)

let value_ref (v : Graph.value) =
  if v.v_name = "" then Printf.sprintf "v%d" v.v_id
  else Printf.sprintf "%s_%d" v.v_name v.v_id

let rank_of shapes (v : Graph.value) =
  match Shape_infer.shape_of shapes v with
  | Some s -> Some (Array.length s)
  | None -> None

let dims_of shapes (v : Graph.value) = Shape_infer.shape_of shapes v

let scalar_operand (v : Graph.value) =
  match v.v_origin with
  | Graph.Def (n, _) -> begin
      match n.n_op with
      | Op.Constant (Op.Cint i) -> Iconst i
      | _ -> Ivar (value_ref v)
    end
  | _ -> Ivar (value_ref v)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* total accessor: a too-short index means the value's rank was unknown *)
let nth_ix index dim = List.nth_opt index dim

let insert_nth l n x =
  let rec go i = function
    | rest when i = n -> x :: rest
    | [] -> [ x ]
    | y :: rest -> y :: go (i + 1) rest
  in
  go 0 l

(* Align an output-ranked index onto an input with the given shape:
   truncate from the left, pin broadcast (size-1) dimensions to 0. *)
let broadcast_index shapes (v : Graph.value) index =
  match dims_of shapes v with
  | None -> None
  | Some dims ->
      let rank = Array.length dims in
      let out_rank = List.length index in
      let tail =
        if out_rank >= rank then
          List.filteri (fun i _ -> i >= out_rank - rank) index
        else index
      in
      Some
        (List.mapi
           (fun i ixv ->
             match dims.(i) with Shape_infer.Known 1 -> Iconst 0 | _ -> ixv)
           tail)

type ctx = {
  shapes : Shape_infer.result;
  plan : Fusion.plan;
  gid : int;
  counter : int ref;
}

let fresh_red ctx =
  let r = Printf.sprintf "r%d" !(ctx.counter) in
  incr ctx.counter;
  r

let in_group ctx (v : Graph.value) =
  match Graph.defining_node v with
  | None -> false
  | Some node -> (
      match Fusion.kernel_class_of ctx.plan node with
      | Fusion.Kernel g -> g = ctx.gid
      | Fusion.No_cost -> (
          match node.n_op with
          | Op.Access _ | Op.View _ | Op.Constant _ -> true
          | _ -> false))

(* Only pure data movement and constants fold into a consumer's index
   expression; every compute node gets its own statement and is referenced
   by name — full inlining is exponential on assign chains. *)
let inline_through ctx (v : Graph.value) =
  in_group ctx v
  &&
  match Graph.defining_node v with
  | Some node -> (
      match node.n_op with
      | Op.Access _ | Op.View _ | Op.Constant _ -> true
      | _ -> false)
  | None -> false

(* Reduction extent of a dimension, when known. *)
let extent_of ctx (v : Graph.value) dim =
  match dims_of ctx.shapes v with
  | Some dims when dim >= 0 && dim < Array.length dims -> begin
      match dims.(dim) with Shape_infer.Known n -> n | Shape_infer.Unknown -> 0
    end
  | _ -> 0

(* The slice-write predicate, with bounds dropped when provably full. *)
let slice_conds ctx (base : Graph.value) dim ~start ~stop ~step ixv =
  let extent = extent_of ctx base dim in
  let lower = match start with Iconst 0 -> [] | s -> [ Cge (ixv, s) ] in
  let upper =
    match stop with
    | Iconst s when extent > 0 && s >= extent -> []
    | s -> [ Clt (ixv, s) ]
  in
  let stride = if step = 1 then [] else [ Cmod (ixv, start, step) ] in
  lower @ upper @ stride

let rec expr_of ctx (v : Graph.value) index =
  if not (inline_through ctx v) then
    match broadcast_index ctx.shapes v index with
    | Some ix -> Cread (v, ix)
    | None -> Copaque (value_ref v ^ "[*]")
  else begin
    match Graph.defining_node v with
    | None -> Cread (v, index)
    | Some node -> node_expr ctx node index
  end

and node_expr ctx (node : Graph.node) index =
  let input i = List.nth node.n_inputs i in
  let sub i idx =
    let v = input i in
    match broadcast_index ctx.shapes v idx with
    | Some ix -> expr_of ctx v ix
    | None -> expr_of ctx v idx
  in
  match node.n_op with
  | Op.Constant (Op.Cfloat f) -> Clit f
  | Op.Constant (Op.Cint i) -> Clit (float_of_int i)
  | Op.Constant (Op.Cbool b) -> Clit (if b then 1.0 else 0.0)
  | Op.Unary u -> Cunary (u, sub 0 index)
  | Op.Binary b -> Cbinary (b, sub 0 index, sub 1 index)
  | Op.Where ->
      (* data-dependent select: c*a + (1-c)*b *)
      Cbinary
        ( Scalar.Add,
          Cbinary (Scalar.Mul, sub 0 index, sub 1 index),
          Cbinary
            (Scalar.Mul, Cbinary (Scalar.Sub, Clit 1.0, sub 0 index), sub 2 index)
        )
  | Op.Clone -> sub 0 index
  | Op.View kind | Op.Access kind -> access_expr ctx node kind index
  | Op.Assign kind -> assign_expr ctx node kind index
  | Op.Softmax { dim } ->
      let r = fresh_red ctx in
      let extent = extent_of ctx (input 0) dim in
      let red_index =
        List.mapi (fun i ixv -> if i = dim then Ivar r else ixv) index
      in
      Cbinary
        ( Scalar.Div,
          Cunary (Scalar.Exp, sub 0 index),
          Creduce (`Sum, r, extent, Cunary (Scalar.Exp, sub 0 red_index)) )
  | Op.Sum_dim { dim; keepdim } ->
      let r = fresh_red ctx in
      let extent = extent_of ctx (input 0) dim in
      let inner =
        if keepdim then
          List.mapi (fun i ixv -> if i = dim then Ivar r else ixv) index
        else insert_nth index dim (Ivar r)
      in
      Creduce (`Sum, r, extent, sub 0 inner)
  | Op.Max_dim { dim; keepdim } ->
      let r = fresh_red ctx in
      let extent = extent_of ctx (input 0) dim in
      let inner =
        if keepdim then
          List.mapi (fun i ixv -> if i = dim then Ivar r else ixv) index
        else insert_nth index dim (Ivar r)
      in
      Creduce (`Max, r, extent, sub 0 inner)
  | Op.Zeros _ -> Clit 0.0
  | Op.Ones _ -> Clit 1.0
  | Op.Full _ -> begin
      match (input 0).v_origin with
      | Graph.Def (n, _) -> begin
          match n.n_op with
          | Op.Constant (Op.Cfloat f) -> Clit f
          | Op.Constant (Op.Cint i) -> Clit (float_of_int i)
          | _ -> Copaque "<full>"
        end
      | _ -> Copaque "<full>"
    end
  | Op.Sum | Op.Mean -> Copaque "<full reduction>"
  | Op.Arange | Op.Scalar_binary _ -> Copaque "<scalar>"
  | _ -> Cread (List.hd node.n_outputs, index)

and access_expr ctx (node : Graph.node) kind index =
  let base = List.hd node.n_inputs in
  let operand i = scalar_operand (List.nth node.n_inputs (1 + i)) in
  match kind with
  | Op.Identity -> expr_of ctx base index
  | Op.Select { dim } -> expr_of ctx base (insert_nth index dim (operand 0))
  | Op.Slice { dim; step } ->
      let start = operand 0 in
      let mapped =
        List.mapi
          (fun i ixv ->
            if i = dim then
              if step = 1 then iadd start ixv
              else
                iadd start
                  (Ivar (Printf.sprintf "(%s * %d)" (ix_to_string ixv) step))
            else ixv)
          index
      in
      expr_of ctx base mapped
  | Op.Unsqueeze { dim } -> expr_of ctx base (drop_nth index dim)
  | Op.Squeeze { dim } -> expr_of ctx base (insert_nth index dim (Iconst 0))
  | Op.Permute { dims } ->
      if List.length index < Array.length dims then Copaque "<unranked access>"
      else
        let rank = Array.length dims in
        let base_index =
          List.init rank (fun bd ->
              let out_pos = ref 0 in
              Array.iteri (fun i d -> if d = bd then out_pos := i) dims;
              List.nth index !out_pos)
        in
        expr_of ctx base base_index
  | Op.Reshape _ | Op.Expand _ -> Copaque (value_ref base ^ "[reindex]")

and assign_expr ctx (node : Graph.node) kind index =
  let base = List.nth node.n_inputs 0 in
  let src = List.nth node.n_inputs 1 in
  let operand i = scalar_operand (List.nth node.n_inputs (2 + i)) in
  let src_expr idx =
    match broadcast_index ctx.shapes src idx with
    | Some ix -> expr_of ctx src ix
    | None -> expr_of ctx src idx
  in
  let select conds then_ else_ =
    match conds with [] -> then_ | cs -> Ccond (cs, then_, else_)
  in
  match kind with
  | Op.Identity -> src_expr index
  | Op.Select { dim } -> begin
      match nth_ix index dim with
      | None -> Copaque "<unranked assign>"
      | Some ixd ->
          let k = operand 0 in
          select
            [ Ceq (ixd, k) ]
            (src_expr (drop_nth index dim))
            (expr_of ctx base index)
    end
  | Op.Slice { dim; step } -> begin
      match nth_ix index dim with
      | None -> Copaque "<unranked assign>"
      | Some ixv ->
      let start = operand 0 and stop = operand 1 in
      let conds = slice_conds ctx base dim ~start ~stop ~step ixv in
      let src_ix =
        List.mapi
          (fun i x ->
            if i = dim then
              if step = 1 then isub x start
              else
                Ivar
                  (Printf.sprintf "((%s) / %d)" (ix_to_string (isub x start)) step)
            else x)
          index
      in
      select conds (src_expr src_ix) (expr_of ctx base index)
    end
  | Op.Unsqueeze { dim } -> begin
      match nth_ix index dim with
      | None -> Copaque "<unranked assign>"
      | Some ixd ->
          select [ Ceq (ixd, Iconst 0) ] (src_expr index)
            (expr_of ctx base index)
    end
  | Op.Squeeze { dim } -> src_expr (insert_nth index dim (Iconst 0))
  | Op.Permute { dims } ->
      if List.length index < Array.length dims then Copaque "<unranked assign>"
      else
        let rank = Array.length dims in
        let src_index = List.init rank (fun i -> List.nth index dims.(i)) in
        src_expr src_index
  | Op.Reshape _ | Op.Expand _ -> Copaque "<scatter>"

(* --- kernel assembly --- *)

let group_members (g : Graph.t) plan =
  let order : (int, Graph.node list) Hashtbl.t = Hashtbl.create 16 in
  let sequence = ref [] in
  Graph.iter_nodes g (fun node ->
      match Fusion.kernel_class_of plan node with
      | Fusion.Kernel gid ->
          if not (Hashtbl.mem order gid) then sequence := gid :: !sequence;
          let existing = Option.value (Hashtbl.find_opt order gid) ~default:[] in
          Hashtbl.replace order gid (node :: existing)
      | Fusion.No_cost -> ());
  List.rev_map (fun gid -> (gid, List.rev (Hashtbl.find order gid))) !sequence

let kernel_of plan shapes idx (gid, members) =
  let ctx = { shapes; plan; gid; counter = ref 0 } in
  let emits_stmt (n : Graph.node) =
    match n.n_op with
    | Op.Access _ | Op.View _ | Op.Constant _ | Op.Scalar_binary _ ->
        List.exists (Fusion.value_escapes plan) n.n_outputs
    | _ -> true
  in
  let stmts =
    List.concat_map
      (fun (n : Graph.node) ->
        if not (emits_stmt n) then []
        else
          List.map
            (fun (out : Graph.value) ->
              let rank = Option.value (rank_of shapes out) ~default:0 in
              let index =
                List.init rank (fun i -> Ivar (Printf.sprintf "i%d" i))
              in
              {
                s_out = out;
                s_rank = rank;
                s_store = Fusion.value_escapes plan out;
                s_expr = node_expr ctx n index;
              })
            n.n_outputs)
      members
  in
  (* external tensor inputs referenced by any statement *)
  let inputs = ref [] in
  let local : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace local s.s_out.Graph.v_id ()) stmts;
  let rec note = function
    | Cread (v, _) ->
        if
          Dtype.equal v.Graph.v_type Dtype.Tensor
          && (not (Hashtbl.mem local v.Graph.v_id))
          && not (List.exists (fun (_, x) -> x == v) !inputs)
        then inputs := (value_ref v, v) :: !inputs
    | Clit _ | Copaque _ -> ()
    | Cunary (_, e) -> note e
    | Cbinary (_, a, b) ->
        note a;
        note b
    | Ccond (_, a, b) ->
        note a;
        note b
    | Creduce (_, _, _, e) -> note e
  in
  List.iter (fun s -> note s.s_expr) stmts;
  let outputs = List.filter (fun s -> s.s_store) stmts in
  {
    k_name = Printf.sprintf "fused_%d" idx;
    k_group = gid;
    k_inputs = List.rev !inputs;
    k_outputs = List.map (fun s -> (value_ref s.s_out, s.s_out)) outputs;
    k_stmts = stmts;
  }

let emit g plan ~shapes =
  group_members g plan |> List.mapi (fun i gm -> kernel_of plan shapes i gm)

(* --- rendering --- *)

let rec cexpr_to_string = function
  | Cread (v, index) ->
      value_ref v
      ^
      if index = [] then ""
      else "[" ^ String.concat ", " (List.map ix_to_string index) ^ "]"
  | Clit f -> Printf.sprintf "%g" f
  | Cunary (u, e) ->
      Printf.sprintf "%s(%s)" (Scalar.unary_name u) (cexpr_to_string e)
  | Cbinary (b, x, y) ->
      let sym =
        match b with
        | Scalar.Add -> "+"
        | Scalar.Sub -> "-"
        | Scalar.Mul -> "*"
        | Scalar.Div -> "/"
        | Scalar.Pow -> "**"
        | Scalar.Max -> "`max`"
        | Scalar.Min -> "`min`"
        | Scalar.Lt -> "<"
        | Scalar.Gt -> ">"
        | Scalar.Eq -> "=="
      in
      Printf.sprintf "(%s %s %s)" (cexpr_to_string x) sym (cexpr_to_string y)
  | Ccond (conds, t, e) ->
      Printf.sprintf "((%s) ? %s : %s)"
        (String.concat " && " (List.map cond_to_string conds))
        (cexpr_to_string t) (cexpr_to_string e)
  | Creduce (kind, r, extent, body) ->
      Printf.sprintf "reduce_%s(%s < %d, %s)"
        (match kind with `Sum -> "sum" | `Max -> "max")
        r extent (cexpr_to_string body)
  | Copaque s -> s

let shape_str shapes v =
  match Shape_infer.shape_of shapes v with
  | Some s -> Shape_infer.to_string s
  | None -> "[?]"

let render k ~shapes =
  let param (name, v) = Printf.sprintf "%s: %s" name (shape_str shapes v) in
  let line s =
    let index = List.init s.s_rank (fun i -> Printf.sprintf "i%d" i) in
    let lhs =
      value_ref s.s_out
      ^ if index = [] then "" else "[" ^ String.concat ", " index ^ "]"
    in
    Printf.sprintf "  %s%s = %s"
      (if s.s_store then "store " else "")
      lhs (cexpr_to_string s.s_expr)
  in
  Printf.sprintf "kernel %s(%s) -> (%s):\n%s" k.k_name
    (String.concat ", " (List.map param k.k_inputs))
    (String.concat ", " (List.map param k.k_outputs))
    (String.concat "\n" (List.map line k.k_stmts))

let render_all g plan ~shapes =
  emit g plan ~shapes |> List.map (render ~shapes) |> String.concat "\n\n"

(* --- evaluation --- *)

exception Not_executable of string

let rec eval_ix env = function
  | Iconst c -> c
  | Ivar s -> begin
      match env s with
      | Some v -> v
      | None ->
          raise (Not_executable (Printf.sprintf "unbound index symbol %s" s))
    end
  | Iadd (a, b) -> eval_ix env a + eval_ix env b
  | Isub (a, b) -> eval_ix env a - eval_ix env b

let eval_cond env = function
  | Ceq (a, b) -> eval_ix env a = eval_ix env b
  | Cge (a, b) -> eval_ix env a >= eval_ix env b
  | Clt (a, b) -> eval_ix env a < eval_ix env b
  | Cmod (a, b, s) -> (eval_ix env a - eval_ix env b) mod s = 0

let eval_kernel k ~shapes ~lookup ~scalar =
  let locals : (int, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let find_tensor (v : Graph.value) =
    match Hashtbl.find_opt locals v.v_id with
    | Some t -> Some t
    | None -> lookup v
  in
  let results = ref [] in
  List.iter
    (fun s ->
      let shape =
        match Shape_infer.shape_of shapes s.s_out with
        | Some dims
          when Array.for_all
                 (function Shape_infer.Known _ -> true | Shape_infer.Unknown -> false)
                 dims ->
            Array.map
              (function Shape_infer.Known n -> n | Shape_infer.Unknown -> 0)
              dims
        | _ ->
            raise
              (Not_executable
                 (Printf.sprintf "unknown shape for %s" (value_ref s.s_out)))
      in
      let out = Tensor.zeros shape in
      Shape.iter_indices shape (fun index ->
          let env name =
            if String.length name > 1 && name.[0] = 'i' then begin
              match
                int_of_string_opt (String.sub name 1 (String.length name - 1))
              with
              | Some d when d < Array.length index -> Some index.(d)
              | _ -> scalar name
            end
            else scalar name
          in
          let rec eval env (e : cexpr) =
            match e with
            | Clit f -> f
            | Copaque what -> raise (Not_executable what)
            | Cunary (u, e) -> Scalar.apply_unary u (eval env e)
            | Cbinary (b, x, y) ->
                Scalar.apply_binary b (eval env x) (eval env y)
            | Ccond (conds, t, e) ->
                if List.for_all (eval_cond env) conds then eval env t
                else eval env e
            | Creduce (kind, r, extent, body) ->
                if extent <= 0 then
                  raise (Not_executable "reduction with unknown extent");
                let init =
                  match kind with `Sum -> 0.0 | `Max -> Float.neg_infinity
                in
                let combine =
                  match kind with `Sum -> ( +. ) | `Max -> Float.max
                in
                let acc = ref init in
                for rv = 0 to extent - 1 do
                  let env' name = if name = r then Some rv else env name in
                  acc := combine !acc (eval env' body)
                done;
                !acc
            | Cread (v, ixs) -> begin
                match find_tensor v with
                | None ->
                    raise
                      (Not_executable
                         (Printf.sprintf "unbound tensor %s" (value_ref v)))
                | Some t ->
                    let concrete = Array.of_list (List.map (eval_ix env) ixs) in
                    Tensor.get t concrete
              end
          in
          Tensor.set out index (eval env s.s_expr));
      Hashtbl.replace locals s.s_out.Graph.v_id out;
      results := (s.s_out, out) :: !results)
    k.k_stmts;
  List.rev !results
