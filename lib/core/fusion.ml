open Functs_ir

type kernel_class = No_cost | Kernel of int

type plan = {
  classes : (int, kernel_class) Hashtbl.t;
  group_count : int;
  parallel_loops : (int, unit) Hashtbl.t;
  loop_verdicts : (int, Loop_par.verdict) Hashtbl.t;
  escaping : (int, unit) Hashtbl.t;
}

(* Vertical fusion: maximal consecutive runs of fusible nodes per block.
   Free nodes neither join nor break a run; Break closes it without a
   kernel; Kernel nodes are singleton groups.

   With [fence_loop_assigns], an [immut::assign] inside a loop body is
   fenced into a singleton group: the executor keeps assign-bearing
   groups under loops on the per-node path so the write can donate into
   the carried buffer, and one fused assign used to drag its whole
   surrounding compute chain (the GRU/LSTM cell body) off the kernel
   path with it.  Fencing the assign leaves the chain as an assign-free
   group the closure/JIT backends can run, while the assign itself
   still donates.  The flag is the execution engine's: the cost model
   and the figures count kernel launches over the unfenced plan, where
   a launch means one fused group per the paper's accounting. *)
let assign_groups ~fence_loop_assigns profile (g : Graph.t) classes =
  let next_group = ref 0 in
  let fresh_group () =
    let id = !next_group in
    incr next_group;
    id
  in
  let rec walk_block ~in_loop (block : Graph.block) =
    let current = ref None in
    let close () = current := None in
    List.iter
      (fun (node : Graph.node) ->
        match profile.Compiler_profile.classify node.n_op with
        | Compiler_profile.Free -> Hashtbl.replace classes node.n_id No_cost
        | Compiler_profile.Break ->
            Hashtbl.replace classes node.n_id No_cost;
            close ()
        | Compiler_profile.Kernel ->
            Hashtbl.replace classes node.n_id (Kernel (fresh_group ()));
            close ()
        | Compiler_profile.Fusible
          when fence_loop_assigns && in_loop
               && (match node.n_op with Op.Assign _ -> true | _ -> false) ->
            Hashtbl.replace classes node.n_id (Kernel (fresh_group ()));
            close ()
        | Compiler_profile.Fusible ->
            let gid =
              match !current with
              | Some gid -> gid
              | None ->
                  let gid = fresh_group () in
                  current := Some gid;
                  gid
            in
            Hashtbl.replace classes node.n_id (Kernel gid)
        | Compiler_profile.Control ->
            Hashtbl.replace classes node.n_id No_cost;
            close ();
            let in_loop = in_loop || node.n_op = Op.Loop in
            List.iter (walk_block ~in_loop) node.n_blocks)
      block.b_nodes
  in
  walk_block ~in_loop:false g.g_block;
  !next_group

(* A group consisting solely of [immut::access] nodes moves no data of its
   own: each member is a (possibly strided) read that its consumers — e.g.
   a matmul reading through the descriptor — perform directly.  Demote such
   groups to metadata so functionalization is never charged for turning a
   view into an access. *)
let demote_access_only_groups (g : Graph.t) classes =
  let members : (int, Graph.node list) Hashtbl.t = Hashtbl.create 16 in
  Graph.iter_nodes g (fun node ->
      match Hashtbl.find_opt classes node.n_id with
      | Some (Kernel gid) ->
          let existing = Option.value (Hashtbl.find_opt members gid) ~default:[] in
          Hashtbl.replace members gid (node :: existing)
      | Some No_cost | None -> ());
  Hashtbl.iter
    (fun _gid nodes ->
      let access_only =
        List.for_all
          (fun (n : Graph.node) ->
            match n.n_op with Op.Access _ -> true | _ -> false)
          nodes
      in
      if access_only then
        List.iter
          (fun (n : Graph.node) -> Hashtbl.replace classes n.n_id No_cost)
          nodes)
    members

let node_group classes (node : Graph.node) =
  match Hashtbl.find_opt classes node.n_id with
  | Some (Kernel gid) -> Some gid
  | Some No_cost | None -> None

(* A fused value escapes when some consumer lives outside its group (or it
   is returned from a block). *)
let compute_escaping (g : Graph.t) classes =
  let escaping = Hashtbl.create 64 in
  Graph.iter_nodes g (fun node ->
      match node_group classes node with
      | None -> ()
      | Some gid ->
          List.iter
            (fun (out : Graph.value) ->
              let escapes =
                List.exists
                  (function
                    | Graph.Return _ -> true
                    | Graph.Input (consumer, _) -> (
                        match node_group classes consumer with
                        | Some gid' -> gid' <> gid
                        | None -> true))
                  (Graph.uses_in g out)
              in
              if escapes then Hashtbl.replace escaping out.v_id ())
            node.n_outputs);
  escaping

let plans_c = Functs_obs.Metrics.counter "fusion.plans"
let loops_parallel_c = Functs_obs.Metrics.counter "fusion.loops.parallel"
let loops_reduction_c = Functs_obs.Metrics.counter "fusion.loops.reduction"
let loops_sequential_c = Functs_obs.Metrics.counter "fusion.loops.sequential"

(* Horizontal parallelization: every [prim::Loop] is classified by the
   dependence analysis in {!Loop_par}; profile knobs can only demote a
   verdict, never promote one. *)
let classify_loops profile g =
  let verdicts = Hashtbl.create 4 in
  Graph.iter_nodes g (fun (node : Graph.node) ->
      if node.n_op = Op.Loop then begin
        let verdict =
          if not profile.Compiler_profile.horizontal then
            Loop_par.Sequential "horizontal parallelization disabled by profile"
          else
            match Loop_par.classify g node with
            | Loop_par.Reduction _
              when not profile.Compiler_profile.parallel_reductions ->
                Loop_par.Sequential "parallel reductions disabled by profile"
            | v -> v
        in
        (match verdict with
        | Loop_par.Parallel _ ->
            Functs_obs.Metrics.incr loops_parallel_c
        | Loop_par.Reduction _ ->
            Functs_obs.Metrics.incr loops_reduction_c
        | Loop_par.Sequential reason ->
            Functs_obs.Metrics.incr loops_sequential_c;
            Functs_obs.Tracer.instant "fusion.loop_sequential"
              ~args:
                [
                  ("graph", g.Graph.g_name);
                  ("loop", string_of_int node.n_id);
                  ("reason", reason);
                ]);
        Hashtbl.replace verdicts node.n_id verdict
      end);
  verdicts

let plan ?(fence_loop_assigns = false) profile (g : Graph.t) =
  Functs_obs.Tracer.span_args "fusion.plan"
    ~args:(fun () ->
      [ ("graph", g.Graph.g_name); ("profile", profile.Compiler_profile.short_name) ])
  @@ fun () ->
  let classes = Hashtbl.create 64 in
  let group_count = assign_groups ~fence_loop_assigns profile g classes in
  demote_access_only_groups g classes;
  let escaping = compute_escaping g classes in
  let loop_verdicts = classify_loops profile g in
  let parallel_loops = Hashtbl.create 4 in
  let reductions = ref 0 in
  Hashtbl.iter
    (fun node_id verdict ->
      match verdict with
      | Loop_par.Parallel _ -> Hashtbl.replace parallel_loops node_id ()
      | Loop_par.Reduction _ ->
          incr reductions;
          Hashtbl.replace parallel_loops node_id ()
      | Loop_par.Sequential _ -> ())
    loop_verdicts;
  Functs_obs.Metrics.incr plans_c;
  Functs_obs.Tracer.instant "fusion.planned"
    ~args:
      [
        ("groups", string_of_int group_count);
        ("parallel_loops", string_of_int (Hashtbl.length parallel_loops));
        ("reduction_loops", string_of_int !reductions);
      ];
  { classes; group_count; parallel_loops; loop_verdicts; escaping }

let kernel_class_of plan (node : Graph.node) =
  Option.value (Hashtbl.find_opt plan.classes node.n_id) ~default:No_cost

let is_parallel_loop plan (node : Graph.node) =
  Hashtbl.mem plan.parallel_loops node.n_id

let loop_verdict plan (node : Graph.node) =
  match Hashtbl.find_opt plan.loop_verdicts node.n_id with
  | Some v -> v
  | None -> Loop_par.Sequential "not a classified loop"

let value_escapes plan (v : Graph.value) = Hashtbl.mem plan.escaping v.v_id

let group_sizes plan =
  let counts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ cls ->
      match cls with
      | Kernel gid ->
          let c = Option.value (Hashtbl.find_opt counts gid) ~default:0 in
          Hashtbl.replace counts gid (c + 1)
      | No_cost -> ())
    plan.classes;
  Hashtbl.fold (fun gid c acc -> (gid, c) :: acc) counts []
  |> List.sort compare
