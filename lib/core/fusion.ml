open Functs_ir

type kernel_class = No_cost | Kernel of int

type plan = {
  classes : (int, kernel_class) Hashtbl.t;
  group_count : int;
  parallel_loops : (int, unit) Hashtbl.t;
  escaping : (int, unit) Hashtbl.t;
}

(* Vertical fusion: maximal consecutive runs of fusible nodes per block.
   Free nodes neither join nor break a run; Break closes it without a
   kernel; Kernel nodes are singleton groups. *)
let assign_groups profile (g : Graph.t) classes =
  let next_group = ref 0 in
  let fresh_group () =
    let id = !next_group in
    incr next_group;
    id
  in
  let rec walk_block (block : Graph.block) =
    let current = ref None in
    let close () = current := None in
    List.iter
      (fun (node : Graph.node) ->
        match profile.Compiler_profile.classify node.n_op with
        | Compiler_profile.Free -> Hashtbl.replace classes node.n_id No_cost
        | Compiler_profile.Break ->
            Hashtbl.replace classes node.n_id No_cost;
            close ()
        | Compiler_profile.Kernel ->
            Hashtbl.replace classes node.n_id (Kernel (fresh_group ()));
            close ()
        | Compiler_profile.Fusible ->
            let gid =
              match !current with
              | Some gid -> gid
              | None ->
                  let gid = fresh_group () in
                  current := Some gid;
                  gid
            in
            Hashtbl.replace classes node.n_id (Kernel gid)
        | Compiler_profile.Control ->
            Hashtbl.replace classes node.n_id No_cost;
            close ();
            List.iter walk_block node.n_blocks)
      block.b_nodes
  in
  walk_block g.g_block;
  !next_group

(* A group consisting solely of [immut::access] nodes moves no data of its
   own: each member is a (possibly strided) read that its consumers — e.g.
   a matmul reading through the descriptor — perform directly.  Demote such
   groups to metadata so functionalization is never charged for turning a
   view into an access. *)
let demote_access_only_groups (g : Graph.t) classes =
  let members : (int, Graph.node list) Hashtbl.t = Hashtbl.create 16 in
  Graph.iter_nodes g (fun node ->
      match Hashtbl.find_opt classes node.n_id with
      | Some (Kernel gid) ->
          let existing = Option.value (Hashtbl.find_opt members gid) ~default:[] in
          Hashtbl.replace members gid (node :: existing)
      | Some No_cost | None -> ());
  Hashtbl.iter
    (fun _gid nodes ->
      let access_only =
        List.for_all
          (fun (n : Graph.node) ->
            match n.n_op with Op.Access _ -> true | _ -> false)
          nodes
      in
      if access_only then
        List.iter
          (fun (n : Graph.node) -> Hashtbl.replace classes n.n_id No_cost)
          nodes)
    members

let node_group classes (node : Graph.node) =
  match Hashtbl.find_opt classes node.n_id with
  | Some (Kernel gid) -> Some gid
  | Some No_cost | None -> None

(* A fused value escapes when some consumer lives outside its group (or it
   is returned from a block). *)
let compute_escaping (g : Graph.t) classes =
  let escaping = Hashtbl.create 64 in
  Graph.iter_nodes g (fun node ->
      match node_group classes node with
      | None -> ()
      | Some gid ->
          List.iter
            (fun (out : Graph.value) ->
              let escapes =
                List.exists
                  (function
                    | Graph.Return _ -> true
                    | Graph.Input (consumer, _) -> (
                        match node_group classes consumer with
                        | Some gid' -> gid' <> gid
                        | None -> true))
                  (Graph.uses_in g out)
              in
              if escapes then Hashtbl.replace escaping out.v_id ())
            node.n_outputs);
  escaping

(* Horizontal parallelization: the loop body must be pure fused code whose
   carried tensors are only touched through Select-by-induction-variable
   rules, making iterations write-disjoint. *)
let loop_is_parallel profile (node : Graph.node) =
  match node.n_blocks with
  | [ body ] -> begin
      match body.b_params with
      | [] -> false
      | i_param :: carried_params ->
          let body_pure =
            List.for_all
              (fun (n : Graph.node) ->
                match profile.Compiler_profile.classify n.n_op with
                | Compiler_profile.Fusible | Compiler_profile.Free -> true
                | Compiler_profile.Kernel | Compiler_profile.Break
                | Compiler_profile.Control ->
                    false)
              body.b_nodes
          in
          let all_tensor =
            List.for_all
              (fun (p : Graph.value) -> Dtype.equal p.v_type Dtype.Tensor)
              carried_params
          in
          if (not body_pure) || not all_tensor || carried_params = [] then false
          else begin
            (* Versions of the carried tensors within one iteration, each
               tagged with the carried slot it descends from: the params
               (slot = position) plus every Assign output whose base is a
               version, inheriting the base's slot. *)
            let versions = ref (List.mapi (fun j p -> (p, j)) carried_params) in
            let slot_of v =
              List.find_map
                (fun (m, j) -> if m == v then Some j else None)
                !versions
            in
            List.iter
              (fun (n : Graph.node) ->
                match (n.n_op, n.n_inputs, n.n_outputs) with
                | Op.Assign _, base :: _, [ out ] -> (
                    match slot_of base with
                    | Some j -> versions := (out, j) :: !versions
                    | None -> ())
                | _, _, _ -> ())
              body.b_nodes;
            let indexed_by_i (n : Graph.node) =
              let select_index_ok operands =
                match operands with [ idx ] -> idx == i_param | _ -> false
              in
              match (n.n_op, n.n_inputs) with
              | Op.Access (Op.Select _), _base :: operands ->
                  select_index_ok operands
              | Op.Assign (Op.Select _), _base :: _src :: operands ->
                  select_index_ok operands
              | _, _ -> false
            in
            (* Every in-body use of a carried version must go through a
               Select-by-i rule (reads and writes hit iteration-private
               slices); appearing in the block returns is the hand-off to
               the next iteration and is always fine. *)
            let use_ok (v : Graph.value) =
              List.for_all
                (fun (n : Graph.node) ->
                  let used_here = List.exists (fun i -> i == v) n.n_inputs in
                  if not used_here then true
                  else begin
                    match n.n_inputs with
                    | base :: _ when base == v -> indexed_by_i n
                    | _ -> (
                        (* Only legal non-base position: Assign source. *)
                        match (n.n_op, n.n_inputs) with
                        | Op.Assign _, _ :: src :: _ -> src == v
                        | _, _ -> false)
                  end)
                body.b_nodes
            in
            (* Each carried return must hand the next iteration a version of
               its own slot; returning anything else — or a crossed slot —
               is a genuine loop-carried dependence, so actually running the
               iterations concurrently would be unsound. *)
            let returns_slot_consistent =
              List.length body.b_returns = List.length carried_params
              && List.for_all Fun.id
                   (List.mapi
                      (fun j ret -> slot_of ret = Some j)
                      body.b_returns)
            in
            returns_slot_consistent
            && List.for_all use_ok (List.map fst !versions)
          end
    end
  | _ -> false

let plans_c = Functs_obs.Metrics.counter "fusion.plans"

let plan profile (g : Graph.t) =
  Functs_obs.Tracer.span_args "fusion.plan"
    ~args:(fun () ->
      [ ("graph", g.Graph.g_name); ("profile", profile.Compiler_profile.short_name) ])
  @@ fun () ->
  let classes = Hashtbl.create 64 in
  let group_count = assign_groups profile g classes in
  demote_access_only_groups g classes;
  let escaping = compute_escaping g classes in
  let parallel_loops = Hashtbl.create 4 in
  if profile.Compiler_profile.horizontal then
    Graph.iter_nodes g (fun node ->
        if node.n_op = Op.Loop && loop_is_parallel profile node then
          Hashtbl.replace parallel_loops node.n_id ());
  Functs_obs.Metrics.incr plans_c;
  Functs_obs.Tracer.instant "fusion.planned"
    ~args:
      [
        ("groups", string_of_int group_count);
        ("parallel_loops", string_of_int (Hashtbl.length parallel_loops));
      ];
  { classes; group_count; parallel_loops; escaping }

let kernel_class_of plan (node : Graph.node) =
  Option.value (Hashtbl.find_opt plan.classes node.n_id) ~default:No_cost

let is_parallel_loop plan (node : Graph.node) =
  Hashtbl.mem plan.parallel_loops node.n_id

let value_escapes plan (v : Graph.value) = Hashtbl.mem plan.escaping v.v_id

let group_sizes plan =
  let counts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ cls ->
      match cls with
      | Kernel gid ->
          let c = Option.value (Hashtbl.find_opt counts gid) ~default:0 in
          Hashtbl.replace counts gid (c + 1)
      | No_cost -> ())
    plan.classes;
  Hashtbl.fold (fun gid c acc -> (gid, c) :: acc) counts []
  |> List.sort compare
