open Functs_ir

type kind =
  | Memory_view of Graph.node
  | Memory_mutation of Graph.node
  | Control
  | Container

type edge = { src : Graph.value; dst : Graph.value; kind : kind }

type t = {
  all_edges : edge list;
  by_src : (int, edge list) Hashtbl.t;
  by_dst : (int, edge list) Hashtbl.t;
  values : (int, Graph.value) Hashtbl.t;
}

let add_to tbl key edge =
  let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  Hashtbl.replace tbl key (edge :: existing)

let is_tensor (v : Graph.value) = Dtype.equal v.v_type Dtype.Tensor

let build (g : Graph.t) =
  Functs_obs.Tracer.span "alias.build" @@ fun () ->
  let acc = ref [] in
  let emit src dst kind =
    if is_tensor src && is_tensor dst then acc := { src; dst; kind } :: !acc
  in
  let nth_opt = List.nth_opt in
  Graph.iter_nodes g (fun node ->
      match node.n_op with
      | Op.View _ -> begin
          match (node.n_outputs, node.n_inputs) with
          | [ out ], base :: _ -> emit out base (Memory_view node)
          | _, _ -> ()
        end
      | Op.Mutate _ -> begin
          match (node.n_outputs, node.n_inputs) with
          | [ out ], dst :: _ -> emit out dst (Memory_mutation node)
          | _, _ -> ()
        end
      | Op.If -> begin
          match node.n_blocks with
          | [ then_b; else_b ] ->
              List.iteri
                (fun i out ->
                  List.iter
                    (fun (b : Graph.block) ->
                      match nth_opt b.b_returns i with
                      | Some ret -> emit out ret Control
                      | None -> ())
                    [ then_b; else_b ])
                node.n_outputs
          | _ -> ()
        end
      | Op.Loop -> begin
          match node.n_blocks with
          | [ body ] ->
              (* Carried param i+1 aliases init input i+1 and body return i;
                 node output i aliases the same pair. *)
              List.iteri
                (fun i out ->
                  (match nth_opt node.n_inputs (i + 1) with
                  | Some init -> emit out init Control
                  | None -> ());
                  (match nth_opt body.b_returns i with
                  | Some ret -> emit out ret Control
                  | None -> ());
                  match nth_opt body.b_params (i + 1) with
                  | Some param ->
                      (match nth_opt node.n_inputs (i + 1) with
                      | Some init -> emit param init Control
                      | None -> ());
                      (match nth_opt body.b_returns i with
                      | Some ret -> emit param ret Control
                      | None -> ())
                  | None -> ())
                node.n_outputs
          | _ -> ()
        end
      | Op.List_construct -> begin
          match node.n_outputs with
          | [ out ] ->
              List.iter
                (fun input ->
                  if is_tensor input then
                    acc := { src = input; dst = out; kind = Container } :: !acc)
                node.n_inputs
          | _ -> ()
        end
      | Op.List_index -> begin
          match (node.n_outputs, node.n_inputs) with
          | [ out ], lst :: _ ->
              if is_tensor out then
                acc := { src = out; dst = lst; kind = Container } :: !acc
          | _, _ -> ()
        end
      | Op.Constant _ | Op.Scalar_binary _ | Op.Unary _ | Op.Binary _
      | Op.Matmul | Op.Softmax _ | Op.Sum | Op.Sum_dim _ | Op.Max_dim _
      | Op.Mean | Op.Cat _ | Op.Stack _ | Op.Where | Op.Cumsum _ | Op.Clone
      | Op.Zeros _ | Op.Ones _ | Op.Full _ | Op.Arange | Op.Access _
      | Op.Assign _ | Op.Update ->
          ());
  let all_edges = List.rev !acc in
  let by_src = Hashtbl.create 64
  and by_dst = Hashtbl.create 64
  and values = Hashtbl.create 64 in
  List.iter
    (fun e ->
      add_to by_src e.src.v_id e;
      add_to by_dst e.dst.v_id e;
      Hashtbl.replace values e.src.v_id e.src;
      Hashtbl.replace values e.dst.v_id e.dst)
    all_edges;
  { all_edges; by_src; by_dst; values }

let edges t = t.all_edges

let out_edges t (v : Graph.value) =
  Option.value (Hashtbl.find_opt t.by_src v.v_id) ~default:[] |> List.rev

let in_edges t (v : Graph.value) =
  Option.value (Hashtbl.find_opt t.by_dst v.v_id) ~default:[] |> List.rev

let must_alias_parent t v =
  match out_edges t v with
  | [ ({ kind = Memory_view _ | Memory_mutation _; _ } as e) ] -> Some (e.dst, e)
  | _ -> None

let component t (v : Graph.value) =
  let seen : (int, Graph.value) Hashtbl.t = Hashtbl.create 16 in
  let rec visit (v : Graph.value) =
    if not (Hashtbl.mem seen v.v_id) then begin
      Hashtbl.add seen v.v_id v;
      List.iter (fun e -> visit e.dst) (out_edges t v);
      List.iter (fun e -> visit e.src) (in_edges t v)
    end
  in
  visit v;
  Hashtbl.fold (fun _ v acc -> v :: acc) seen []

let component_pure_memory t v =
  let members = component t v in
  List.for_all
    (fun m ->
      List.for_all
        (fun e ->
          match e.kind with
          | Memory_view _ | Memory_mutation _ -> true
          | Control | Container -> false)
        (out_edges t m @ in_edges t m))
    members

let kind_to_string = function
  | Memory_view _ -> "memory(view)"
  | Memory_mutation _ -> "memory(mutation)"
  | Control -> "control"
  | Container -> "container"

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s -> %s  [%s]" (Printer.value_name e.src)
        (Printer.value_name e.dst) (kind_to_string e.kind))
    t.all_edges;
  Format.pp_close_box ppf ()
