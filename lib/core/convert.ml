open Functs_ir

type stats = {
  mutations_rewritten : int;
  subgraphs_functionalized : int;
  subgraphs_skipped : (Subgraph.unsafe_reason * string) list;
  updates_inserted : int;
  nodes_removed_by_dce : int;
}

(* A moving insertion point: every inserted node lands right after the
   previous one. *)
type cursor = { mutable anchor : Graph.node }

let insert cursor node =
  Graph.insert_after ~anchor:cursor.anchor node;
  cursor.anchor <- node

let new_tensor_node cursor ?(name = "") op inputs =
  let node = Graph.make_node_named op inputs ~outputs:[ (name, Dtype.Tensor) ] in
  insert cursor node;
  match node.n_outputs with [ v ] -> v | _ -> assert false

let insert_update cursor ~fresh ~old =
  let node = Graph.make_node Op.Update [ fresh; old ] ~output_types:[] in
  insert cursor node

(* The rule [[·]] and its dynamic operands for an alias edge. *)
let edge_rule (edge : Alias_graph.edge) =
  match edge.kind with
  | Alias_graph.Memory_view view_node -> begin
      match view_node.n_op with
      | Op.View k -> begin
          match view_node.n_inputs with
          | _base :: operands -> (k, operands)
          | [] -> invalid_arg "Convert.edge_rule: view node without base"
        end
      | _ -> invalid_arg "Convert.edge_rule: memory edge without view op"
    end
  | Alias_graph.Memory_mutation _ -> (Op.Identity, [])
  | Alias_graph.Control | Alias_graph.Container ->
      invalid_arg "Convert.edge_rule: not a memory edge"

(* Children of [x] in the view tree: alias edges [c -> x] of memory kind,
   in program order of the defining nodes. *)
let view_children alias x =
  List.filter_map
    (fun (e : Alias_graph.edge) ->
      match e.kind with
      | Alias_graph.Memory_view _ | Alias_graph.Memory_mutation _ -> Some e
      | Alias_graph.Control | Alias_graph.Container -> None)
    (Alias_graph.in_edges alias x)

(* Pass-down (Algorithm 1, Traversal): re-materialize every view of [x]
   whose definition dominates the mutation site as an access of the fresh
   version [x'], annotating each with an update. *)
let rec traversal cursor alias ~site x x' =
  insert_update cursor ~fresh:x' ~old:x;
  List.iter
    (fun (e : Alias_graph.edge) ->
      let c = e.Alias_graph.src in
      match Graph.defining_node c with
      | Some def when Dominance.node_dominates def site ->
          let k, operands = edge_rule e in
          let c' =
            new_tensor_node cursor ~name:c.v_name (Op.Access k) (x' :: operands)
          in
          traversal cursor alias ~site c c'
      | Some _ | None -> ())
    (view_children alias x)

(* Rewrite one Mutate node into TensorSSA form.  The mutation's output
   value is adopted by the whole-assign node so every existing use and
   alias-graph reference stays valid. *)
let rewrite_mutation alias (sub : Subgraph.t) (n : Graph.node) =
  let cursor = { anchor = n } in
  let dst, functional_src =
    match (n.n_op, n.n_inputs) with
    | Op.Mutate Op.Mut_copy, [ dst; src ] -> (dst, src)
    | Op.Mutate Op.Mut_fill, [ dst; scalar ] -> (dst, scalar)
    | Op.Mutate (Op.Mut_unary u), [ dst ] ->
        (dst, new_tensor_node cursor (Op.Unary u) [ dst ])
    | Op.Mutate (Op.Mut_binary b), [ dst; src ] ->
        (dst, new_tensor_node cursor (Op.Binary b) [ dst; src ])
    | op, _ ->
        invalid_arg
          (Printf.sprintf "Convert.rewrite_mutation: not a mutation: %s"
             (Op.name op))
  in
  (* Whole-assign adopting the mutation's output value. *)
  let assign0 =
    Graph.make_node (Op.Assign Op.Identity) [ dst; functional_src ]
      ~output_types:[]
  in
  let mutated_value = match n.n_outputs with [ v ] -> v | _ -> assert false in
  n.n_outputs <- [];
  assign0.n_outputs <- [ mutated_value ];
  mutated_value.v_origin <- Graph.Def (assign0, 0);
  insert cursor assign0;
  Graph.erase_node n;
  (* [assign0] now stands where the mutation stood; use it as the
     dominance reference point ("N" in Algorithm 1). *)
  let site = assign0 in
  (* Pass-up: climb the view path from dst to the origin tensor. *)
  let rec pass_up v current =
    if v == sub.root then current
    else begin
      match Subgraph.parent_link alias v with
      | None ->
          invalid_arg
            (Printf.sprintf "Convert: %s has no view parent on the path to %s"
               (Printer.value_name v)
               (Printer.value_name sub.root))
      | Some (parent, edge) ->
          let k, operands = edge_rule edge in
          let fresh =
            new_tensor_node cursor ~name:parent.v_name (Op.Assign k)
              (parent :: current :: operands)
          in
          pass_up parent fresh
    end
  in
  let new_root = pass_up dst mutated_value in
  (* Pass-down from the origin tensor. *)
  traversal cursor alias ~site sub.root new_root

(* Swap the remaining aten:: view operators of a functionalized sub-graph
   to their immut::access counterparts: with every mutation gone, copying
   semantics and aliasing semantics coincide. *)
let immutabilize_views (sub : Subgraph.t) =
  List.iter
    (fun (v : Graph.value) ->
      match Graph.defining_node v with
      | Some node -> begin
          match node.n_op with Op.View k -> node.n_op <- Op.Access k | _ -> ()
        end
      | None -> ())
    sub.members

(* Block propagation (Algorithm 1, lines 17-32). *)
let block_propagation (g : Graph.t) =
  let updates = ref [] in
  Graph.iter_nodes g (fun node ->
      if node.n_op = Op.Update then updates := node :: !updates);
  let snapshot = List.rev !updates in
  (* One propagated output per (control node, escaping value). *)
  let memo : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let propagate (u : Graph.node) =
    match u.n_inputs with
    | [ fresh; old ] ->
        let b_end = Graph.defining_block old in
        let rec climb (b : Graph.block) =
          if not (b == b_end) then begin
            match b.b_parent with
            | None ->
                invalid_arg
                  "Convert.block_propagation: escaped the graph without \
                   reaching the defining block"
            | Some owner ->
                if Hashtbl.mem memo (owner.n_id, old.v_id) then ()
                else begin
                  Hashtbl.add memo (owner.n_id, old.v_id) ();
                  Graph.add_block_return b old;
                  let out =
                    Graph.add_node_output owner ~name:old.v_name Dtype.Tensor
                  in
                  let after =
                    Graph.make_node Op.Update [ out; old ] ~output_types:[]
                  in
                  Graph.insert_after ~anchor:owner after;
                  (match owner.n_op with
                  | Op.Loop ->
                      Graph.add_node_input owner old;
                      let param =
                        Graph.add_block_param b ~name:old.v_name Dtype.Tensor
                      in
                      let at_start =
                        Graph.make_node Op.Update [ param; old ] ~output_types:[]
                      in
                      Graph.prepend b at_start
                  | Op.If ->
                      (* Keep the sibling block's return arity aligned; its
                         own renaming will substitute its local version. *)
                      List.iter
                        (fun (sibling : Graph.block) ->
                          if not (sibling == b) then
                            Graph.add_block_return sibling old)
                        owner.n_blocks
                  | _ ->
                      invalid_arg
                        "Convert.block_propagation: update escapes a \
                         non-control-flow block");
                  climb (Graph.node_block owner)
                end
          end
        in
        climb (Graph.defining_block fresh)
    | _ -> invalid_arg "Convert.block_propagation: malformed tssa::update"
  in
  List.iter propagate snapshot

(* Renaming (Algorithm 1, lines 33-35): process updates in program order;
   each replaces later uses of its old value within its block, then all
   updates are erased. *)
let rename_and_strip (g : Graph.t) =
  let updates = ref [] in
  Graph.iter_nodes g (fun node ->
      if node.n_op = Op.Update then updates := node :: !updates);
  let in_order = List.rev !updates in
  List.iter
    (fun (u : Graph.node) ->
      match u.n_inputs with
      | [ fresh; old ] ->
          Graph.replace_uses_after ~anchor:u ~old_value:old ~new_value:fresh
      | _ -> invalid_arg "Convert.rename: malformed tssa::update")
    in_order;
  List.iter Graph.erase_node in_order;
  List.length in_order

let count_op g pred =
  let n = ref 0 in
  Graph.iter_nodes g (fun node -> if pred node.Graph.n_op then incr n);
  !n

let mutation_free g = count_op g Op.is_mutation = 0
let update_free g = count_op g (fun op -> op = Op.Update) = 0

(* Views whose alias component contains no mutation at all are trivially
   functional: nothing ever writes through them, so copying semantics and
   aliasing semantics coincide and they may fuse.  Only views belonging to
   a component we refused to functionalize must stay aliasing views. *)
let immutabilize_unmutated_views (g : Graph.t) alias ~unsafe_witnesses =
  let unsafe_ids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (w : Graph.value) ->
      List.iter
        (fun (m : Graph.value) -> Hashtbl.replace unsafe_ids m.v_id ())
        (Alias_graph.component alias w))
    unsafe_witnesses;
  Graph.iter_nodes g (fun node ->
      match node.n_op with
      | Op.View k -> begin
          match node.n_outputs with
          | [ out ] when not (Hashtbl.mem unsafe_ids out.v_id) ->
              node.n_op <- Op.Access k
          | _ -> ()
        end
      | _ -> ())

let functionalize ?(verify = true) (g : Graph.t) =
  Functs_obs.Tracer.span_args "convert.functionalize"
    ~args:(fun () -> [ ("graph", g.Graph.g_name) ])
  @@ fun () ->
  let alias = Alias_graph.build g in
  let classified = Subgraph.extract g alias in
  let safe, skipped =
    List.fold_left
      (fun (safe, skipped) -> function
        | Subgraph.Safe t -> (t :: safe, skipped)
        | Subgraph.Unsafe { reason; witness } ->
            (safe, (reason, witness) :: skipped))
      ([], []) classified
  in
  let safe = List.rev safe and skipped = List.rev skipped in
  let mutations_rewritten =
    List.fold_left
      (fun acc (sub : Subgraph.t) ->
        List.iter (rewrite_mutation alias sub) sub.mutations;
        immutabilize_views sub;
        acc + List.length sub.mutations)
      0 safe
  in
  immutabilize_unmutated_views g alias
    ~unsafe_witnesses:(List.map snd skipped);
  let skipped =
    List.map (fun (reason, w) -> (reason, Printer.value_name w)) skipped
  in
  block_propagation g;
  let updates_inserted = rename_and_strip g in
  let nodes_removed_by_dce = Dce.removed_count g in
  if verify then Verifier.check_exn g;
  {
    mutations_rewritten;
    subgraphs_functionalized = List.length safe;
    subgraphs_skipped = skipped;
    updates_inserted;
    nodes_removed_by_dce;
  }
