(** Compiler pipeline profiles — the subject ({e TensorSSA}) and the
    baselines of the paper's evaluation (§5.1), each described by what it
    can fuse, whether it functionalizes first, and which runtime drives
    control flow.

    The profiles encode exactly the differences the paper attributes to
    each pipeline: TorchScript backends (NNC, nvFuser) cannot fuse across
    views and treat mutation as a fusion break; TorchDynamo+TorchInductor
    functionalizes data flow (so views/mutations fuse within straight-line
    regions) but breaks graphs at control flow, which then runs under the
    Python interpreter; TensorSSA functionalizes holistically, fuses the
    [immut::] operators, and may parallelize loops horizontally. *)

open Functs_ir

(** How a node behaves for fusion-group formation. *)
type op_class =
  | Free  (** no device kernel, does not break a fusion run *)
  | Fusible  (** may join a fusion group *)
  | Kernel  (** its own kernel; breaks runs *)
  | Break  (** no kernel (e.g. a view descriptor update) but breaks runs *)
  | Control  (** [prim::If] / [prim::Loop] *)

(** Who executes control flow and op dispatch, for the cost model. *)
type runtime =
  | Python_eager  (** per-op framework dispatch from Python *)
  | Torchscript  (** compiled graph, small per-op interpreter cost *)
  | Dynamo
      (** compiled regions called from Python; control flow interpreted,
          each region invocation pays a graph-call overhead *)

type t = {
  name : string;
  short_name : string;  (** for table columns, e.g. ["TS+NNC"] *)
  functionalize : bool;  (** run the TensorSSA conversion first *)
  horizontal : bool;  (** horizontal loop parallelization enabled *)
  parallel_reductions : bool;
      (** execute associative-accumulator loops as chunked partial
          reductions (requires [horizontal]) *)
  runtime : runtime;
  classify : Op.t -> op_class;
}

val eager : t
val ts_nnc : t
val ts_nvfuser : t
val dynamo_inductor : t
val tensorssa : t

val all : t list
(** Evaluation order: eager, TS+NNC, TS+nvFuser, Dynamo+Inductor, TensorSSA. *)

val baselines : t list
(** [all] without TensorSSA. *)

(** {1 Ablations (extension beyond the paper)} *)

val tensorssa_no_horizontal : t
(** TensorSSA without horizontal loop parallelization. *)

val tensorssa_no_fusion : t
(** Functionalization only: every immut:: op its own kernel. *)

val tensorssa_no_reduction : t
(** TensorSSA with [Reduction]-classified loops demoted to sequential. *)

val find : string -> t option
(** Look up any profile (including ablations) by [short_name]. *)

(** {1 Compile-cache counters}

    Hit/miss/evict counters for the execution engine's shape-keyed
    compile cache.  The counters live in the process-wide metrics
    registry ({!Functs_obs.Metrics}, names [engine.cache.*]); this
    module names them so the engine can increment and every layer —
    CLI, bench, tests — can read the same record without depending on
    the engine. *)

val cache_hit : unit -> unit
val cache_miss : unit -> unit
val cache_eviction : unit -> unit
(** Incrementers, called by [Functs_exec.Engine] only. *)

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}
(** An immutable point-in-time reading. *)

val cache_snapshot : unit -> cache_stats

val reset_compile_cache : unit -> unit
(** Zero the three [engine.cache.*] counters. *)
