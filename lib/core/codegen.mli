(** Tensor-expression code generation for fused kernels (paper §4.2.1:
    after TensorSSA conversion, Access/Assign regions "can be directly
    converted to equivalent tensor-level expression using a DSL by deep
    learning compiler backend").

    For every fusion group of a plan, [emit] produces one kernel: its
    external inputs, its escaping outputs, and one compute {e statement}
    per fused node.  View rules become index arithmetic, assigns become
    predicated selects, reductions become explicit combinators:

    {v
    kernel fused_0(t: [8, 4], s: [4]) -> (o: [8, 4]):
      store o[i0, i1] = ((i0 == k) ? relu(s[i1]) : t[i0, i1])
    v}

    Statements are built as expression ASTs, so kernels can be {e
    executed} ({!eval_kernel}) as well as rendered — the test suite runs
    every emitted kernel against the reference interpreter.  Shape
    information comes from {!Functs_ir.Shape_infer}. *)

open Functs_ir
open Functs_tensor

(** Symbolic index arithmetic (simplified on construction). *)
type ix = Ivar of string | Iconst of int | Iadd of ix * ix | Isub of ix * ix

type cond =
  | Ceq of ix * ix
  | Cge of ix * ix
  | Clt of ix * ix
  | Cmod of ix * ix * int  (** (a - b) mod step == 0 *)

(** Scalar compute expressions over indexed buffer reads. *)
type cexpr =
  | Cread of Graph.value * ix list
  | Clit of float
  | Cunary of Scalar.unary * cexpr
  | Cbinary of Scalar.binary * cexpr * cexpr
  | Ccond of cond list * cexpr * cexpr  (** all conds hold ? then : else *)
  | Creduce of [ `Sum | `Max ] * string * int * cexpr
      (** combinator, reduction variable, extent, body *)
  | Copaque of string  (** not executable (reshape/expand reindexing) *)

type statement = {
  s_out : Graph.value;
  s_rank : int;
  s_store : bool;  (** escapes the kernel (vs. a local temporary) *)
  s_expr : cexpr;
}

type kernel = {
  k_name : string;
  k_group : int;  (** fusion-group id of {!Fusion.plan} this kernel executes *)
  k_inputs : (string * Graph.value) list;
  k_outputs : (string * Graph.value) list;
  k_stmts : statement list;
}

val value_ref : Graph.value -> string
(** The buffer/symbol name a value gets in the DSL. *)

val emit : Graph.t -> Fusion.plan -> shapes:Shape_infer.result -> kernel list
val render : kernel -> shapes:Shape_infer.result -> string
val render_all : Graph.t -> Fusion.plan -> shapes:Shape_infer.result -> string

exception Not_executable of string
(** Raised by {!eval_kernel} on [Copaque] expressions or unknown shapes. *)

val eval_kernel :
  kernel ->
  shapes:Shape_infer.result ->
  lookup:(Graph.value -> Tensor.t option) ->
  scalar:(string -> int option) ->
  (Graph.value * Tensor.t) list
(** Execute every statement; [lookup] resolves external tensor reads,
    [scalar] resolves free scalar index symbols (dynamic select indices,
    loop variables).  Returns all statement results, stored and local. *)
