(** Reference interpreter for the graph IR.

    Execution is faithful to imperative tensor semantics: [aten::] view
    operators return aliases of their base tensor's storage and mutation
    operators write through them, so running a program before and after
    functionalization and comparing outputs is a semantics check of the
    conversion.

    The [observer] hook receives one event per executed operator and per
    control-flow step; the kernel-trace / cost layers are built on it. *)

open Functs_ir

type event =
  | Op_executed of {
      node : Graph.node;
      inputs : Value.t list;
      outputs : Value.t list;
    }  (** a non-control-flow operator finished *)
  | If_taken of { node : Graph.node; then_branch : bool }
  | Loop_started of { node : Graph.node; trip : int }
  | Loop_iteration of { node : Graph.node; index : int }

exception Runtime_error of string

val run :
  ?observer:(event -> unit) -> Graph.t -> Value.t list -> Value.t list
(** Execute the graph on the given parameter values and return its
    returns.  @raise Runtime_error on arity/type mismatches. *)

val run_tensors :
  ?observer:(event -> unit) ->
  Graph.t ->
  Functs_tensor.Tensor.t list ->
  Functs_tensor.Tensor.t list
(** Convenience wrapper for all-tensor signatures.  Input tensors are
    cloned first so callers can reuse them across runs even when the
    program mutates its inputs. *)

val apply_view_kind :
  Op.view_kind -> Functs_tensor.Tensor.t -> Value.t list ->
  Functs_tensor.Tensor.t
(** Apply a view rule with its dynamic operands; the result aliases the
    input (exposed for tests and for the fused executor). *)

val apply_op : Graph.node -> Value.t list -> Value.t list
(** Evaluate a non-control-flow operator as a pure function of its input
    values (exposed for the fused executor's per-node fallback path).
    @raise Runtime_error on [prim::If]/[prim::Loop]/[immut::update]. *)
