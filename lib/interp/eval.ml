open Functs_ir
open Functs_tensor

type event =
  | Op_executed of {
      node : Graph.node;
      inputs : Value.t list;
      outputs : Value.t list;
    }
  | If_taken of { node : Graph.node; then_branch : bool }
  | Loop_started of { node : Graph.node; trip : int }
  | Loop_iteration of { node : Graph.node; index : int }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

let apply_view_kind kind base operands =
  match (kind, operands) with
  | Op.Identity, [] -> base
  | Op.Select { dim }, [ idx ] -> Tensor.select base ~dim (Value.to_int idx)
  | Op.Slice { dim; step }, [ start; stop ] ->
      Tensor.slice base ~dim ~start:(Value.to_int start)
        ~stop:(Value.to_int stop) ~step
  | Op.Reshape { shape }, [] -> Tensor.reshape base shape
  | Op.Permute { dims }, [] -> Tensor.permute base dims
  | Op.Expand { sizes }, [] -> Tensor.expand base sizes
  | Op.Unsqueeze { dim }, [] -> Tensor.unsqueeze base ~dim
  | Op.Squeeze { dim }, [] -> Tensor.squeeze base ~dim
  | ( ( Op.Identity | Op.Select _ | Op.Slice _ | Op.Reshape _ | Op.Permute _
      | Op.Expand _ | Op.Unsqueeze _ | Op.Squeeze _ ),
      _ ) ->
      error "view rule %s applied to %d operands" (Op.view_kind_to_string kind)
        (List.length operands)

(* [immut::assign]: a fresh tensor equal to [base] with the region under
   the rule overwritten by [src]. *)
let eval_assign kind base src operands =
  let fresh = Tensor.clone base in
  let region = apply_view_kind kind fresh operands in
  let src_tensor = Value.to_tensor src in
  (if Tensor.numel region = 1 && Tensor.numel src_tensor = 1 then
     (* Single-element region: write the scalar straight through the view
        instead of paying the broadcast/overlap machinery of [copy_]. *)
     Tensor.set region
       (Array.make (Tensor.ndim region) 0)
       (Tensor.get src_tensor (Array.make (Tensor.ndim src_tensor) 0))
   else ignore (Inplace.copy_ region src_tensor));
  fresh

let scalar_binary fn a b =
  match (fn, a, b) with
  | Scalar.Lt, _, _ -> Value.Bool (Value.to_float a < Value.to_float b)
  | Scalar.Gt, _, _ -> Value.Bool (Value.to_float a > Value.to_float b)
  | Scalar.Eq, _, _ -> Value.Bool (Value.to_float a = Value.to_float b)
  | _, Value.Int x, Value.Int y ->
      Value.Int
        (match fn with
        | Scalar.Add -> x + y
        | Scalar.Sub -> x - y
        | Scalar.Mul -> x * y
        | Scalar.Div -> x / y
        | Scalar.Max -> max x y
        | Scalar.Min -> min x y
        | Scalar.Pow ->
            int_of_float (Float.pow (float_of_int x) (float_of_int y))
        | Scalar.Lt | Scalar.Gt | Scalar.Eq -> assert false)
  | _, _, _ ->
      Value.Float (Scalar.apply_binary fn (Value.to_float a) (Value.to_float b))

type env = (int, Value.t) Hashtbl.t

let bind (env : env) (v : Graph.value) value = Hashtbl.replace env v.v_id value

let lookup (env : env) (v : Graph.value) =
  match Hashtbl.find_opt env v.v_id with
  | Some value -> value
  | None -> error "unbound value %s" (Printer.value_name v)

let observe observer event =
  match observer with Some f -> f event | None -> ()

(* Dispatch for every operator that is a pure function of its inputs (no
   blocks, no environment).  Shared with the fused executor's per-node
   fallback path. *)
let apply_op (node : Graph.node) (inputs : Value.t list) =
  let tensor_in i = Value.to_tensor (List.nth inputs i) in
  match node.n_op with
  | Op.Constant (Op.Cfloat f) -> [ Value.Float f ]
  | Op.Constant (Op.Cint i) -> [ Value.Int i ]
  | Op.Constant (Op.Cbool b) -> [ Value.Bool b ]
  | Op.Scalar_binary fn -> begin
      match inputs with
      | [ a; b ] -> [ scalar_binary fn a b ]
      | _ -> error "prim scalar op expects two inputs"
    end
  | Op.Unary fn -> [ Value.Tensor (Ops.unary fn (tensor_in 0)) ]
  | Op.Binary fn ->
      [ Value.Tensor (Ops.binary fn (tensor_in 0) (tensor_in 1)) ]
  | Op.Matmul -> [ Value.Tensor (Ops.matmul (tensor_in 0) (tensor_in 1)) ]
  | Op.Softmax { dim } -> [ Value.Tensor (Ops.softmax (tensor_in 0) ~dim) ]
  | Op.Sum -> [ Value.Tensor (Ops.sum (tensor_in 0)) ]
  | Op.Sum_dim { dim; keepdim } ->
      [ Value.Tensor (Ops.sum_dim (tensor_in 0) ~dim ~keepdim) ]
  | Op.Max_dim { dim; keepdim } ->
      [ Value.Tensor (Ops.max_dim (tensor_in 0) ~dim ~keepdim) ]
  | Op.Mean -> [ Value.Tensor (Ops.mean (tensor_in 0)) ]
  | Op.Cat { dim } ->
      [ Value.Tensor (Ops.cat (List.map Value.to_tensor inputs) ~dim) ]
  | Op.Stack { dim } ->
      [ Value.Tensor (Ops.stack (List.map Value.to_tensor inputs) ~dim) ]
  | Op.Where ->
      [ Value.Tensor (Ops.where (tensor_in 0) (tensor_in 1) (tensor_in 2)) ]
  | Op.Cumsum { dim } -> [ Value.Tensor (Ops.cumsum (tensor_in 0) ~dim) ]
  | Op.Clone -> [ Value.Tensor (Tensor.clone (tensor_in 0)) ]
  | Op.Zeros { shape } -> [ Value.Tensor (Tensor.zeros shape) ]
  | Op.Ones { shape } -> [ Value.Tensor (Tensor.ones shape) ]
  | Op.Full { shape } ->
      [ Value.Tensor (Tensor.full shape (Value.to_float (List.nth inputs 0))) ]
  | Op.Arange ->
      [ Value.Tensor (Tensor.arange (Value.to_int (List.nth inputs 0))) ]
  | Op.View kind -> begin
      match inputs with
      | base :: operands ->
          [ Value.Tensor (apply_view_kind kind (Value.to_tensor base) operands) ]
      | [] -> error "view without base"
    end
  | Op.Mutate kind -> begin
      let result =
        match (kind, inputs) with
        | Op.Mut_copy, [ dst; src ] ->
            Inplace.copy_ (Value.to_tensor dst) (Value.to_tensor src)
        | Op.Mut_fill, [ dst; v ] ->
            Inplace.fill_ (Value.to_tensor dst) (Value.to_float v)
        | Op.Mut_unary u, [ dst ] -> Inplace.unary_ u (Value.to_tensor dst)
        | Op.Mut_binary b, [ dst; src ] ->
            Inplace.binary_ b (Value.to_tensor dst) (Value.to_tensor src)
        | _, _ -> error "malformed mutation %s" (Op.name node.n_op)
      in
      [ Value.Tensor result ]
    end
  | Op.Access kind -> begin
      match inputs with
      | base :: operands ->
          let viewed = apply_view_kind kind (Value.to_tensor base) operands in
          [ Value.Tensor (Tensor.clone viewed) ]
      | [] -> error "access without base"
    end
  | Op.Assign kind -> begin
      match inputs with
      | base :: src :: operands ->
          [ Value.Tensor (eval_assign kind (Value.to_tensor base) src operands) ]
      | _ -> error "assign needs base and source"
    end
  | Op.List_construct -> [ Value.List inputs ]
  | Op.List_index -> begin
      match inputs with
      | [ Value.List items; idx ] -> begin
          match List.nth_opt items (Value.to_int idx) with
          | Some v -> [ v ]
          | None -> error "list index out of range"
        end
      | _ -> error "aten::__getitem__ expects a list and an index"
    end
  | Op.Update | Op.If | Op.Loop ->
      error "%s is not a plain operator" (Op.name node.n_op)

let rec exec_block observer (env : env) (block : Graph.block) =
  List.iter (exec_node observer env) block.b_nodes;
  List.map (lookup env) block.b_returns

and exec_node observer (env : env) (node : Graph.node) =
  let inputs = List.map (lookup env) node.n_inputs in
  let bind_outputs outputs =
    if List.length outputs <> List.length node.n_outputs then
      error "%s produced %d values for %d outputs" (Op.name node.n_op)
        (List.length outputs) (List.length node.n_outputs);
    List.iter2 (bind env) node.n_outputs outputs;
    observe observer (Op_executed { node; inputs; outputs })
  in
  match node.n_op with
  | Op.Update ->
      (* Annotation only; legal mid-conversion, never at a phase boundary. *)
      observe observer (Op_executed { node; inputs; outputs = [] })
  | Op.If -> begin
      match (inputs, node.n_blocks) with
      | [ cond ], [ then_b; else_b ] ->
          let taken = Value.to_bool cond in
          observe observer (If_taken { node; then_branch = taken });
          let rets = exec_block observer env (if taken then then_b else else_b) in
          if List.length rets <> List.length node.n_outputs then
            error "prim::If branch returned %d values for %d outputs"
              (List.length rets) (List.length node.n_outputs);
          List.iter2 (bind env) node.n_outputs rets;
          observe observer (Op_executed { node; inputs; outputs = rets })
      | _, _ -> error "malformed prim::If"
    end
  | Op.Loop -> begin
      match (node.n_inputs, node.n_blocks) with
      | _trip :: _carried_in, [ body ] ->
          let trip = Value.to_int (List.nth inputs 0) in
          let carried = ref (List.tl inputs) in
          observe observer (Loop_started { node; trip });
          (match body.b_params with
          | [] -> error "prim::Loop body without induction parameter"
          | i_param :: carried_params ->
              for i = 0 to trip - 1 do
                observe observer (Loop_iteration { node; index = i });
                bind env i_param (Value.Int i);
                List.iter2 (bind env) carried_params !carried;
                carried := exec_block observer env body
              done);
          if List.length !carried <> List.length node.n_outputs then
            error "prim::Loop carried arity mismatch";
          List.iter2 (bind env) node.n_outputs !carried;
          observe observer (Op_executed { node; inputs; outputs = !carried })
      | _, _ -> error "malformed prim::Loop"
    end
  | _ -> bind_outputs (apply_op node inputs)

let run ?observer (g : Graph.t) args =
  let env : env = Hashtbl.create 64 in
  let params = Graph.params g in
  if List.length params <> List.length args then
    error "graph %s expects %d arguments, got %d" g.g_name (List.length params)
      (List.length args);
  List.iter2 (bind env) params args;
  exec_block observer env g.g_block

let run_tensors ?observer g tensors =
  let args = List.map (fun t -> Value.Tensor (Tensor.clone t)) tensors in
  List.map Value.to_tensor (run ?observer g args)
