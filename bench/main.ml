(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Fig. 5-8 plus the 5.2 headline), then times the compiler
   stages behind each figure with Bechamel (one Test.make per figure).

   The [exec] target instead measures wall-clock execution: every workload
   through the reference interpreter, the fused engine, and the fused
   engine with horizontal loop parallelization, reporting the ratios.

   Usage:
     dune exec bench/main.exe [-- fig5|fig6|fig7|fig8|headline|ablation|micro|exec]
   With no argument everything runs.  Unknown targets exit non-zero.

   [exec] writes machine-readable results to BENCH_exec.json (per-workload
   best-of-N wall-clock, pool dispatch overhead vs Domain.spawn/join, and
   cold/warm compile-cache timings).  [exec --smoke] only checks that every
   workload's engine outputs match the interpreter — no timing, no JSON. *)

open Bechamel
open Functs

(* Resolve the FUNCTS_* overlay once; everything below takes the typed
   config explicitly (a malformed variable aborts, never falls back). *)
let config =
  match Functs.init () with
  | Ok cfg -> cfg
  | Error e ->
      prerr_endline ("bench: " ^ Error.to_string e);
      exit 2

(* Figure renderers are registered into [Functs.Report] by the harness
   (linked with -linkall); the bench only knows their names. *)
let figure name =
  match Report.render name with
  | Some text -> text
  | None -> Printf.sprintf "figure %S is not registered" name

let all_targets =
  [ "fig5"; "fig6"; "fig7"; "fig8"; "headline"; "ablation"; "micro"; "exec" ]

(* Flags are stripped before target validation. *)
let raw_picks =
  match Array.to_list Sys.argv with _ :: picks -> picks | [] -> []

let smoke_mode = List.mem "--smoke" raw_picks

let selected () =
  match List.filter (fun p -> p <> "--smoke") raw_picks with
  | _ :: _ as picks -> (
      match List.filter (fun p -> not (List.mem p all_targets)) picks with
      | [] -> picks
      | bad ->
          Printf.eprintf "unknown target%s: %s\nvalid targets: %s\n"
            (if List.length bad > 1 then "s" else "")
            (String.concat ", " bad)
            (String.concat ", " all_targets);
          exit 2)
  | [] -> all_targets

let wants what = List.mem what (selected ())

(* --- Bechamel micro-benchmarks: the compiler work behind each figure --- *)

let workload_graphs () =
  List.map
    (fun (w : Workload.t) ->
      Workload.graph w ~batch:w.default_batch ~seq:w.default_seq)
    Registry.all

let functionalized_graphs () =
  List.map
    (fun g ->
      let g = Graph.clone g in
      ignore (Convert.functionalize g);
      g)
    (workload_graphs ())

(* Fig. 5 is driven by the full TensorSSA conversion of every workload. *)
let bench_fig5 graphs =
  Test.make ~name:"fig5/tensorssa-conversion"
    (Staged.stage (fun () ->
         List.iter
           (fun g ->
             let g = Graph.clone g in
             ignore (Convert.functionalize ~verify:false g))
           graphs))

(* Fig. 6 counts kernels, i.e. fusion planning on functionalized graphs. *)
let bench_fig6 graphs =
  Test.make ~name:"fig6/fusion-planning"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Fusion.plan Compiler_profile.tensorssa g))
           graphs))

(* Fig. 7 scales batch: time the traced execution of SSD at batch 4. *)
let bench_fig7 () =
  let w = Option.get (Registry.find "ssd") in
  let g = Workload.graph w ~batch:4 ~seq:w.default_seq in
  ignore (Convert.functionalize g);
  let plan = Fusion.plan Compiler_profile.tensorssa g in
  let args = w.inputs ~batch:4 ~seq:w.default_seq in
  Test.make ~name:"fig7/traced-exec-ssd-batch4"
    (Staged.stage (fun () ->
         ignore
           (Trace.run ~profile:Compiler_profile.tensorssa ~plan g
              args)))

(* Cleanup pipeline (constant folding + CSE + DCE) on functionalized
   graphs — the optimization pass suite beyond the conversion itself. *)
let bench_passes graphs =
  Test.make ~name:"passes/fold-cse-dce"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Passes.optimize (Graph.clone g)))
           graphs))

(* Tensor-expression codegen over every workload's fused kernels. *)
let bench_codegen () =
  let prepared =
    List.map
      (fun (w : Workload.t) ->
        let g = Workload.graph w ~batch:w.default_batch ~seq:w.default_seq in
        ignore (Convert.functionalize g);
        let plan = Fusion.plan Compiler_profile.tensorssa g in
        let args = w.inputs ~batch:w.default_batch ~seq:w.default_seq in
        let inputs =
          List.map
            (function
              | Value.Tensor t ->
                  Some (Shape_infer.known (Tensor.shape t))
              | _ -> None)
            args
        in
        (g, plan, Shape_infer.infer g ~inputs))
      Registry.all
  in
  Test.make ~name:"codegen/emit-all-workloads"
    (Staged.stage (fun () ->
         List.iter
           (fun (g, plan, shapes) -> ignore (Codegen.emit g plan ~shapes))
           prepared))

(* Fig. 8 scales sequence length: traced execution of NASRNN at seq 128. *)
let bench_fig8 () =
  let w = Option.get (Registry.find "nasrnn") in
  let g = Workload.graph w ~batch:1 ~seq:128 in
  ignore (Convert.functionalize g);
  let plan = Fusion.plan Compiler_profile.tensorssa g in
  let args = w.inputs ~batch:1 ~seq:128 in
  Test.make ~name:"fig8/traced-exec-nasrnn-seq128"
    (Staged.stage (fun () ->
         ignore
           (Trace.run ~profile:Compiler_profile.tensorssa ~plan g
              args)))

let run_micro () =
  let graphs = workload_graphs () in
  let fgraphs = functionalized_graphs () in
  let tests =
    Test.make_grouped ~name:"functs"
      [
        bench_fig5 graphs;
        bench_fig6 fgraphs;
        bench_passes fgraphs;
        bench_codegen ();
        bench_fig7 ();
        bench_fig8 ();
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "Micro-benchmarks (monotonic clock, ns per run):";
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%12.0f ns" e
        | Some [] | None -> "           ?"
      in
      Printf.printf "  %-40s %s\n" name estimate)
    results;
  print_newline ()

(* --- exec: measured wall-clock of the fused execution engine --- *)

(* Best round of an adaptive number of timed rounds, measured PAIRED: every
   round times one run of every arm back to back, so a transient
   machine-level slowdown (CPU steal on a shared host, a background
   daemon) taxes all arms instead of whichever one happened to be under
   the clock — per-arm sequential timing made d2-vs-d4 comparisons flip
   sign run to run.  Each arm reports its best round: timing noise on a
   shared host is strictly additive (steal bursts, GC, daemons only ever
   slow a run down), so the minimum is the robust estimate of true cost;
   medians still carried enough burst contamination to flip the
   d2-vs-d4 comparison between runs. *)
let time_best ?(warmup = 12) fs =
  let n = Array.length fs in
  (* warm-up: fills the storage pool, primes caches, and drives every
     per-group auto-tuner past its sampling phase (up to 4 arms x 3
     samples, plus the batched-loop tuner's 6) so no timed sample lands
     on a deliberately-slow tuning arm *)
  Array.iter
    (fun f ->
      for _ = 1 to warmup do
        ignore (f ())
      done)
    fs;
  let once f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let first = Array.map once fs in
  let slowest = Array.fold_left Float.max 1e-6 first in
  (* Sub-millisecond arms are dominated by scheduling jitter one run at
     a time; batch each of their rounds to ~2ms of work and report the
     per-run average, so a round's jitter is amortized before the
     cross-round minimum is taken. *)
  let reps =
    Array.map
      (fun t -> max 1 (int_of_float (Float.ceil (0.002 /. Float.max t 1e-6))))
      first
  in
  let runs = max 7 (min 63 (int_of_float (0.6 /. slowest))) in
  let samples = Array.init n (fun _ -> Array.make runs 0.) in
  (* Rotate which arm opens each round: with a fixed order, any bias
     tied to position within the round (GC debt from the previous arm,
     timer aliasing) would always tax the same arms. *)
  for r = 0 to runs - 1 do
    for idx = 0 to n - 1 do
      let i = (idx + r) mod n in
      let k = reps.(i) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to k do
        ignore (fs.(i) ())
      done;
      samples.(i).(r) <- (Unix.gettimeofday () -. t0) /. float_of_int k
    done
  done;
  Array.map (fun s -> Array.fold_left Float.min s.(0) s) samples

(* Per-dispatch overhead: the persistent pool's parallel_for against a
   fresh Domain.spawn/join pair doing the same (empty) 2-chunk split —
   the regime PR 1 ran every horizontal loop in. *)
let dispatch_overhead () =
  let pool = Pool.shared ~lanes:2 in
  let body _ _ = () in
  let iters = 500 in
  let timed f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let pool_us =
    timed (fun () -> ignore (Pool.parallel_for pool ~grain:1 ~n:2 body))
  in
  let spawn_us =
    timed (fun () ->
        let d = Domain.spawn (fun () -> body 1 2) in
        body 0 1;
        Domain.join d)
  in
  (pool_us, spawn_us)

(* Cold vs warm [Engine.prepare]: the cold call lowers from scratch (the
   cache was just cleared), the warm one must come back from the compile
   cache.  Measured per call — warm is a digest + hashtable probe. *)
let prepare ~parallel fg ~inputs =
  Engine.prepare ~parallel ~domains:config.Config.domains
    ~loop_grain:config.Config.loop_grain
    ~kernel_grain:config.Config.kernel_grain ~cache:config.Config.cache fg
    ~inputs

(* The JIT arms always measure, whatever FUNCTS_JIT says (per-group
   graceful fallback keeps them safe everywhere).  Each lane is pinned
   to its own engine — [Ocaml] vs [C] — so jit_ms/cjit_ms attribute
   cleanly instead of letting the 4-arm tuner blend the lanes. *)
let prepare_jit fg ~inputs =
  Engine.prepare ~parallel:false ~domains:config.Config.domains
    ~loop_grain:config.Config.loop_grain
    ~kernel_grain:config.Config.kernel_grain ~cache:config.Config.cache
    ~jit:Jit.Ocaml ~jit_dir:config.Config.jit_dir fg ~inputs

let prepare_cjit fg ~inputs =
  Engine.prepare ~parallel:false ~domains:config.Config.domains
    ~loop_grain:config.Config.loop_grain
    ~kernel_grain:config.Config.kernel_grain ~cache:config.Config.cache
    ~jit:Jit.C ~jit_dir:config.Config.jit_dir fg ~inputs

let prepare_times ~parallel fg ~inputs =
  Engine.clear_cache ();
  let stamp f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let cold, _ = stamp (fun () -> prepare ~parallel fg ~inputs) in
  let warm, eng = stamp (fun () -> prepare ~parallel fg ~inputs) in
  (cold, warm, eng)

type wrow = {
  r_name : string;
  r_batch : int;
  r_seq : int;
  r_interp : float;
  r_fused : float;
  r_jit : float;
  r_cjit : float;
  r_par : float;
  r_sweep : (int * float) list; (* domains -> best wall-clock *)
  r_cold : float;
  r_warm : float;
  r_stats : Scheduler.stats;
  r_jit_stats : Scheduler.stats;
  r_cjit_stats : Scheduler.stats;
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* serve-bench read-modify-writes the "serve" member of the same file;
   regenerating the exec members must carry it over, not drop it. *)
let existing_serve path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse text with
    | Ok (Json.Obj fields) -> List.assoc_opt "serve" fields
    | Ok _ | Error _ -> None

let write_json path rows (pool_us, spawn_us) =
  let serve = existing_serve path in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let c = Compiler_profile.cache_snapshot () in
  p "{\n";
  p "  \"domains\": %d,\n" config.Config.domains;
  p "  \"loop_grain\": %d,\n" config.Config.loop_grain;
  p "  \"kernel_grain\": %d,\n" config.Config.kernel_grain;
  p "  \"dispatch_us\": { \"pool\": %.3f, \"spawn_join\": %.3f },\n" pool_us
    spawn_us;
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      let s = r.r_stats in
      let sweep =
        String.concat ", "
          (List.map
             (fun (d, t) -> Printf.sprintf "\"d%d_ms\": %.4f" d (1e3 *. t))
             r.r_sweep)
      in
      let sj = r.r_jit_stats in
      let sc = r.r_cjit_stats in
      p
        "    { \"name\": \"%s\", \"batch\": %d, \"seq\": %d,\n\
        \      \"interp_ms\": %.4f, \"fused_ms\": %.4f, \"jit_ms\": %.4f, \
         \"cjit_ms\": %.4f, \"fused_parallel_ms\": %.4f,\n\
        \      \"fused_speedup\": %.3f, \"jit_speedup\": %.3f, \
         \"cjit_speedup\": %.3f, \"parallel_speedup\": %.3f,\n\
        \      \"jit_groups\": %d, \"jit_runs\": %d, \"jit_fallbacks\": %d, \
         \"cjit_groups\": %d, \"cjit_runs\": %d,\n\
        \      \"sweep\": { %s },\n\
        \      \"prepare_cold_ms\": %.4f, \"prepare_warm_ms\": %.6f,\n\
        \      \"kernel_runs\": %d, \"parallel_loops\": %d, \
         \"reduction_loops\": %d, \"batched_loops\": %d, \
         \"loops_pinned_seq\": %d,\n\
        \      \"pool_lanes\": %d, \"pool_dispatches\": %d, \
         \"pool_steals\": %d, \"pool_inline_runs\": %d, \
         \"pool_seq_fallbacks\": %d,\n\
        \      \"pool_fallbacks\": { \"grain\": %d, \"nested\": %d, \
         \"disabled\": %d } }%s\n"
        (json_escape r.r_name) r.r_batch r.r_seq (1e3 *. r.r_interp)
        (1e3 *. r.r_fused) (1e3 *. r.r_jit) (1e3 *. r.r_cjit)
        (1e3 *. r.r_par)
        (r.r_interp /. Float.max 1e-9 r.r_fused)
        (r.r_fused /. Float.max 1e-9 r.r_jit)
        (r.r_jit /. Float.max 1e-9 r.r_cjit)
        (r.r_interp /. Float.max 1e-9 r.r_par)
        sj.Scheduler.jit_groups sj.Scheduler.last_jit_runs
        sj.Scheduler.jit_fallbacks sc.Scheduler.cjit_groups
        sc.Scheduler.last_cjit_runs sweep (1e3 *. r.r_cold) (1e3 *. r.r_warm)
        s.Scheduler.last_kernel_runs s.Scheduler.last_parallel_loops
        s.Scheduler.last_reduction_loops s.Scheduler.batched_loops
        s.Scheduler.loops_pinned_seq s.Scheduler.pool_lanes
        s.Scheduler.pool_dispatches s.Scheduler.pool_steals
        s.Scheduler.pool_inline_runs s.Scheduler.pool_seq_fallbacks
        s.Scheduler.pool_fb_grain s.Scheduler.pool_fb_nested
        s.Scheduler.pool_fb_disabled
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  p "  ],\n";
  p
    "  \"cache\": { \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"resident\": %d },\n"
    c.Compiler_profile.cache_hits c.Compiler_profile.cache_misses
    c.Compiler_profile.cache_evictions (Engine.cache_size ());
  p "  \"metrics\": %s%s\n"
    (Metrics.to_json (Metrics.snapshot ()))
    (match serve with Some _ -> "," | None -> "");
  (match serve with
  | Some j -> p "  \"serve\": %s\n" (Json.to_string j)
  | None -> ());
  p "}\n";
  close_out oc

(* Bitwise output comparison: the gate for batched loops.  A loop the
   analysis calls Parallel (or an exactly-associative reduction) must
   reproduce the sequential engine's bits, not just its values. *)
let tensors_bitwise a b =
  List.for_all2
    (fun x y ->
      match (x, y) with
      | Value.Tensor t, Value.Tensor u ->
          Tensor.to_flat_array t = Tensor.to_flat_array u
      | _ -> Value.equal ~atol:0.0 x y)
    a b

let sweep_domains = [ 1; 2; 4 ]

let run_exec () =
  let ok = ref true in
  let rows = ref [] in
  if smoke_mode then
    print_endline "Execution engine smoke check (no timing):"
  else begin
    print_endline
      "Execution engine: interpreter vs fused vs fused+parallel (best \
       wall-clock per run; d1/d2/d4 sweep the worker-domain count)";
    Printf.printf
      "  %-10s %11s %11s %11s %11s %11s %8s %8s %8s %8s %9s %9s %9s\n"
      "workload" "interp(ms)" "fused(ms)" "jit(ms)" "cjit(ms)" "par(ms)"
      "fused x" "jit x" "cjit x" "par x" "d1(ms)" "d2(ms)" "d4(ms)"
  end;
  List.iter
    (fun (w : Workload.t) ->
      let batch = w.default_batch and seq = w.default_seq in
      let g = Workload.graph w ~batch ~seq in
      let args = w.inputs ~batch ~seq in
      let expected = Eval.run g args in
      let fg = Graph.clone g in
      ignore (Passes.tensorssa_pipeline fg);
      let inputs = Engine.input_shapes args in
      let eng = prepare ~parallel:false fg ~inputs in
      let engj = prepare_jit fg ~inputs in
      let engc = prepare_cjit fg ~inputs in
      let _, _, engp = prepare_times ~parallel:true fg ~inputs in
      let equal got = List.for_all2 (Value.equal ~atol:1e-4) expected got in
      let seq_ref = Engine.run eng args in
      let jit_out = Engine.run engj args in
      let cjit_out = Engine.run engc args in
      let par_out = Engine.run engp args in
      let sp = Engine.stats engp in
      let nbatched = sp.Scheduler.last_parallel_loops in
      if not (equal seq_ref && equal par_out) then begin
        ok := false;
        Printf.printf "  %-10s ENGINE OUTPUT DIVERGED FROM INTERPRETER\n"
          w.name
      end
      (* the gate for native kernels: bitwise vs the interpreter, or at
         worst within the harness epsilon *)
      else if not (tensors_bitwise expected jit_out || equal jit_out) then begin
        ok := false;
        Printf.printf "  %-10s JIT ENGINE DIVERGED FROM INTERPRETER\n" w.name
      end
      else if not (tensors_bitwise expected cjit_out || equal cjit_out)
      then begin
        ok := false;
        Printf.printf "  %-10s CJIT ENGINE DIVERGED FROM INTERPRETER\n" w.name
      end
      else if nbatched > 0 && not (tensors_bitwise seq_ref par_out) then begin
        ok := false;
        Printf.printf
          "  %-10s PARALLELIZED LOOPS DIVERGED BITWISE FROM THE SEQUENTIAL \
           ENGINE\n"
          w.name
      end
      else if smoke_mode then begin
        let sj = Engine.stats engj in
        let sc = Engine.stats engc in
        Printf.printf
          "  %-10s ok parallel_loops=%d reduction_loops=%d jit_groups=%d \
           cjit_groups=%d\n"
          w.name nbatched sp.Scheduler.last_reduction_loops
          sj.Scheduler.jit_groups sc.Scheduler.cjit_groups
      end
      else begin
        (* Worker-domain sweep: same engine configuration at 1/2/4 lanes.
           domains=1 takes the sequential per-iteration path (the batch
           gate requires at least two lanes), so d1 vs d2/d4 isolates the
           iteration-batching win. *)
        let sweep_engines =
          List.map
            (fun d ->
              let e =
                Engine.prepare ~parallel:true ~domains:d
                  ~loop_grain:config.Config.loop_grain
                  ~kernel_grain:config.Config.kernel_grain
                  ~cache:config.Config.cache fg ~inputs
              in
              let out = Engine.run e args in
              let s = Engine.stats e in
              if not (equal out) then begin
                ok := false;
                Printf.printf
                  "  %-10s DIVERGED FROM INTERPRETER AT domains=%d\n" w.name d
              end
              else if
                s.Scheduler.last_parallel_loops > 0
                && not (tensors_bitwise seq_ref out)
              then begin
                ok := false;
                Printf.printf
                  "  %-10s BITWISE DIVERGENCE FROM SEQUENTIAL AT domains=%d\n"
                  w.name d
              end;
              (d, e))
            sweep_domains
        in
        (* The interpreter is one to two orders slower than any engine
           arm; timing it inside the paired set would cap every arm at a
           handful of rounds.  Its absolute scale is all the report
           needs, so it gets its own short measurement. *)
        let t_interp =
          (time_best ~warmup:2 [| (fun () -> ignore (Eval.run g args)) |]).(0)
        in
        let meds =
          time_best
            (Array.of_list
               ([
                  (fun () -> ignore (Engine.run eng args));
                  (fun () -> ignore (Engine.run engj args));
                  (fun () -> ignore (Engine.run engc args));
                  (fun () -> ignore (Engine.run engp args));
                ]
               @ List.map
                   (fun (_, e) () -> ignore (Engine.run e args))
                   sweep_engines))
        in
        let t_fused = meds.(0) in
        let t_jit = meds.(1) in
        let t_cjit = meds.(2) in
        let t_par = meds.(3) in
        let sweep =
          List.mapi (fun i (d, _) -> (d, meds.(4 + i))) sweep_engines
        in
        (* Re-measure prepare now that timing runs warmed everything: the
           first prepare above also paid kernel auto-tuning samples. *)
        let t_cold, t_warm, _ = prepare_times ~parallel:true fg ~inputs in
        let s = Engine.stats engp in
        let sj = Engine.stats engj in
        let sw d = try List.assoc d sweep with Not_found -> nan in
        (* Scaling monotonicity gate: adding lanes must never cost more
           than 10% over the 2-lane time — a d4 regression means the
           runtime is burning the extra lanes on dispatch or steal
           overhead instead of work. *)
        let d2 = sw 2 and d4 = sw 4 in
        if Float.is_finite d2 && Float.is_finite d4 && d4 > 1.1 *. d2
        then begin
          ok := false;
          Printf.printf
            "  %-10s SCALING REGRESSION: d4 %.3fms > 1.1 x d2 %.3fms\n"
            w.name (1e3 *. d4) (1e3 *. d2)
        end;
        Printf.printf
          "  %-10s %11.3f %11.3f %11.3f %11.3f %11.3f %8.2f %8.2f %8.2f \
           %8.2f %9.3f %9.3f %9.3f\n"
          w.name (1e3 *. t_interp) (1e3 *. t_fused) (1e3 *. t_jit)
          (1e3 *. t_cjit) (1e3 *. t_par) (t_interp /. t_fused)
          (t_interp /. t_jit) (t_interp /. t_cjit) (t_interp /. t_par)
          (1e3 *. sw 1) (1e3 *. sw 2) (1e3 *. sw 4);
        rows :=
          {
            r_name = w.name;
            r_batch = batch;
            r_seq = seq;
            r_interp = t_interp;
            r_fused = t_fused;
            r_jit = t_jit;
            r_cjit = t_cjit;
            r_par = t_par;
            r_sweep = sweep;
            r_cold = t_cold;
            r_warm = t_warm;
            r_stats = s;
            r_jit_stats = sj;
            r_cjit_stats = Engine.stats engc;
          }
          :: !rows
      end)
    (Registry.all @ Registry.extensions);
  if not smoke_mode then begin
    let pool_us, spawn_us = dispatch_overhead () in
    Printf.printf
      "  dispatch overhead: pool %.1f us vs spawn/join %.1f us per 2-way \
       split\n"
      pool_us spawn_us;
    write_json "BENCH_exec.json" (List.rev !rows) (pool_us, spawn_us);
    print_endline "  wrote BENCH_exec.json"
  end
  else begin
    (* The smoke gate asserts this block is present (scripts/check.sh). *)
    print_endline "  == metrics snapshot ==";
    print_string (Metrics.to_text (Metrics.snapshot ()))
  end;
  print_newline ();
  if not !ok then begin
    print_endline
      "ERROR: exec gates failed (divergence or scaling regression above)!";
    exit 1
  end

let () =
  if wants "fig5" then print_endline (figure "fig5");
  if wants "fig6" then print_endline (figure "fig6");
  if wants "fig7" then print_endline (figure "fig7");
  if wants "fig8" then print_endline (figure "fig8");
  if wants "headline" then begin
    print_endline (figure "headline");
    print_newline ()
  end;
  if wants "ablation" then print_endline (figure "ablation");
  if wants "micro" then run_micro ();
  if wants "exec" then run_exec ();
  if wants "headline" then
    if Report.checks_passed () then
      print_endline
        "All traced executions matched the eager reference outputs."
    else begin
      print_endline "ERROR: some traced executions diverged from reference!";
      exit 1
    end
