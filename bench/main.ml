(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Fig. 5-8 plus the 5.2 headline), then times the compiler
   stages behind each figure with Bechamel (one Test.make per figure).

   The [exec] target instead measures wall-clock execution: every workload
   through the reference interpreter, the fused engine, and the fused
   engine with horizontal loop parallelization, reporting the ratios.

   Usage:
     dune exec bench/main.exe [-- fig5|fig6|fig7|fig8|headline|ablation|micro|exec]
   With no argument everything runs.  Unknown targets exit non-zero. *)

open Bechamel
open Functs_ir
open Functs_core
open Functs_workloads
module Figures = Functs_harness.Figures
module Engine = Functs_exec.Engine
module Scheduler = Functs_exec.Scheduler
module Eval = Functs_interp.Eval
module Value = Functs_interp.Value

let all_targets =
  [ "fig5"; "fig6"; "fig7"; "fig8"; "headline"; "ablation"; "micro"; "exec" ]

let selected () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as picks) -> (
      match List.filter (fun p -> not (List.mem p all_targets)) picks with
      | [] -> picks
      | bad ->
          Printf.eprintf "unknown target%s: %s\nvalid targets: %s\n"
            (if List.length bad > 1 then "s" else "")
            (String.concat ", " bad)
            (String.concat ", " all_targets);
          exit 2)
  | _ :: [] | [] -> all_targets

let wants what = List.mem what (selected ())

(* --- Bechamel micro-benchmarks: the compiler work behind each figure --- *)

let workload_graphs () =
  List.map
    (fun (w : Workload.t) ->
      Workload.graph w ~batch:w.default_batch ~seq:w.default_seq)
    Registry.all

let functionalized_graphs () =
  List.map
    (fun g ->
      let g = Graph.clone g in
      ignore (Convert.functionalize g);
      g)
    (workload_graphs ())

(* Fig. 5 is driven by the full TensorSSA conversion of every workload. *)
let bench_fig5 graphs =
  Test.make ~name:"fig5/tensorssa-conversion"
    (Staged.stage (fun () ->
         List.iter
           (fun g ->
             let g = Graph.clone g in
             ignore (Convert.functionalize ~verify:false g))
           graphs))

(* Fig. 6 counts kernels, i.e. fusion planning on functionalized graphs. *)
let bench_fig6 graphs =
  Test.make ~name:"fig6/fusion-planning"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Fusion.plan Compiler_profile.tensorssa g))
           graphs))

(* Fig. 7 scales batch: time the traced execution of SSD at batch 4. *)
let bench_fig7 () =
  let w = Option.get (Registry.find "ssd") in
  let g = Workload.graph w ~batch:4 ~seq:w.default_seq in
  ignore (Convert.functionalize g);
  let plan = Fusion.plan Compiler_profile.tensorssa g in
  let args = w.inputs ~batch:4 ~seq:w.default_seq in
  Test.make ~name:"fig7/traced-exec-ssd-batch4"
    (Staged.stage (fun () ->
         ignore
           (Functs_cost.Trace.run ~profile:Compiler_profile.tensorssa ~plan g
              args)))

(* Cleanup pipeline (constant folding + CSE + DCE) on functionalized
   graphs — the optimization pass suite beyond the conversion itself. *)
let bench_passes graphs =
  Test.make ~name:"passes/fold-cse-dce"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Passes.optimize (Graph.clone g)))
           graphs))

(* Tensor-expression codegen over every workload's fused kernels. *)
let bench_codegen () =
  let prepared =
    List.map
      (fun (w : Workload.t) ->
        let g = Workload.graph w ~batch:w.default_batch ~seq:w.default_seq in
        ignore (Convert.functionalize g);
        let plan = Fusion.plan Compiler_profile.tensorssa g in
        let args = w.inputs ~batch:w.default_batch ~seq:w.default_seq in
        let inputs =
          List.map
            (function
              | Functs_interp.Value.Tensor t ->
                  Some (Shape_infer.known (Functs_tensor.Tensor.shape t))
              | _ -> None)
            args
        in
        (g, plan, Shape_infer.infer g ~inputs))
      Registry.all
  in
  Test.make ~name:"codegen/emit-all-workloads"
    (Staged.stage (fun () ->
         List.iter
           (fun (g, plan, shapes) -> ignore (Codegen.emit g plan ~shapes))
           prepared))

(* Fig. 8 scales sequence length: traced execution of NASRNN at seq 128. *)
let bench_fig8 () =
  let w = Option.get (Registry.find "nasrnn") in
  let g = Workload.graph w ~batch:1 ~seq:128 in
  ignore (Convert.functionalize g);
  let plan = Fusion.plan Compiler_profile.tensorssa g in
  let args = w.inputs ~batch:1 ~seq:128 in
  Test.make ~name:"fig8/traced-exec-nasrnn-seq128"
    (Staged.stage (fun () ->
         ignore
           (Functs_cost.Trace.run ~profile:Compiler_profile.tensorssa ~plan g
              args)))

let run_micro () =
  let graphs = workload_graphs () in
  let fgraphs = functionalized_graphs () in
  let tests =
    Test.make_grouped ~name:"functs"
      [
        bench_fig5 graphs;
        bench_fig6 fgraphs;
        bench_passes fgraphs;
        bench_codegen ();
        bench_fig7 ();
        bench_fig8 ();
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "Micro-benchmarks (monotonic clock, ns per run):";
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%12.0f ns" e
        | Some [] | None -> "           ?"
      in
      Printf.printf "  %-40s %s\n" name estimate)
    results;
  print_newline ()

(* --- exec: measured wall-clock of the fused execution engine --- *)

let time_best f =
  ignore (f ());
  (* warm-up: fills the storage pool, primes caches *)
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let first = once () in
  let reps = max 2 (min 40 (int_of_float (0.3 /. Float.max 1e-6 first))) in
  let best = ref first in
  for _ = 1 to reps do
    let t = once () in
    if t < !best then best := t
  done;
  !best

let run_exec () =
  print_endline
    "Execution engine: interpreter vs fused vs fused+parallel (best \
     wall-clock per run)";
  Printf.printf "  %-10s %11s %11s %11s %8s %8s  %s\n" "workload" "interp(ms)"
    "fused(ms)" "par(ms)" "fused x" "par x" "engine stats";
  let ok = ref true in
  List.iter
    (fun (w : Workload.t) ->
      let batch = w.default_batch and seq = w.default_seq in
      let g = Workload.graph w ~batch ~seq in
      let args = w.inputs ~batch ~seq in
      let expected = Eval.run g args in
      let fg = Graph.clone g in
      ignore (Passes.tensorssa_pipeline fg);
      let inputs = Engine.input_shapes args in
      let eng = Engine.prepare ~parallel:false fg ~inputs in
      let engp = Engine.prepare ~parallel:true fg ~inputs in
      let equal got = List.for_all2 (Value.equal ~atol:1e-4) expected got in
      if not (equal (Engine.run eng args) && equal (Engine.run engp args))
      then begin
        ok := false;
        Printf.printf "  %-10s ENGINE OUTPUT DIVERGED FROM INTERPRETER\n"
          w.name
      end
      else begin
        let t_interp = time_best (fun () -> Eval.run g args) in
        let t_fused = time_best (fun () -> Engine.run eng args) in
        let t_par = time_best (fun () -> Engine.run engp args) in
        let s = Engine.stats engp in
        Printf.printf
          "  %-10s %11.3f %11.3f %11.3f %8.2f %8.2f  \
           kernels=%d/%d donations=%d pool=%d/%d par-loops=%d\n"
          w.name (1e3 *. t_interp) (1e3 *. t_fused) (1e3 *. t_par)
          (t_interp /. t_fused) (t_interp /. t_par)
          s.Scheduler.compiled s.Scheduler.groups s.Scheduler.donations
          s.Scheduler.pool_reused
          (s.Scheduler.pool_fresh + s.Scheduler.pool_reused)
          s.Scheduler.parallel_loops_run
      end)
    (Registry.all @ Registry.extensions);
  print_newline ();
  if not !ok then begin
    print_endline "ERROR: engine outputs diverged from the interpreter!";
    exit 1
  end

let () =
  if wants "fig5" then print_endline (Figures.fig5 ());
  if wants "fig6" then print_endline (Figures.fig6 ());
  if wants "fig7" then print_endline (Figures.fig7 ());
  if wants "fig8" then print_endline (Figures.fig8 ());
  if wants "headline" then begin
    print_endline (Figures.headline_text ());
    print_newline ()
  end;
  if wants "ablation" then print_endline (Figures.ablation ());
  if wants "micro" then run_micro ();
  if wants "exec" then run_exec ();
  if wants "headline" then
    if Figures.all_checks_passed () then
      print_endline
        "All traced executions matched the eager reference outputs."
    else begin
      print_endline "ERROR: some traced executions diverged from reference!";
      exit 1
    end
