(* Cost of the observability layer, measured standalone.

   Four lines, the last one gated in scripts/check.sh:

     span(disabled)          one Tracer.span call with tracing off
     observe(enabled)        one Metrics.observe into a live histogram
     journal(disabled)       one Journal.record with the journal off
     attribution overhead    fused lstm wall time, journal on vs off —
                             must stay <= 2% (the always-on budget) *)

open Functs

let config =
  match Functs.init () with
  | Ok cfg -> cfg
  | Error e ->
      prerr_endline ("obs_overhead: " ^ Error.to_string e);
      exit 2

let per_call seconds iters = seconds /. float iters *. 1e9

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* --- disabled tracer span --- *)

let () =
  Tracer.disable ();
  let acc = ref 0 in
  let work () = incr acc in
  let iters = 50_000_000 in
  (* warm-up *)
  for _ = 1 to 1_000_000 do Tracer.span "x" work done;
  let t_span = timed (fun () -> for _ = 1 to iters do Tracer.span "x" work done) in
  let t_bare = timed (fun () -> for _ = 1 to iters do work () done) in
  Printf.printf
    "span(disabled): %.2f ns/call, bare closure: %.2f ns/call, overhead %.2f ns\n"
    (per_call t_span iters) (per_call t_bare iters)
    (per_call (t_span -. t_bare) iters);
  ignore !acc

(* --- enabled histogram observe (the serve hot path: count/sum/min/max
   plus one bucket increment, no sorting, no allocation) --- *)

let () =
  let h = Metrics.histogram "bench.obs_overhead.observe_us" in
  let iters = 20_000_000 in
  for i = 1 to 100_000 do Metrics.observe h (float (i land 1023)) done;
  let t =
    timed (fun () ->
        for i = 1 to iters do Metrics.observe h (float (i land 1023)) done)
  in
  Printf.printf "observe(enabled): %.2f ns/call\n" (per_call t iters)

(* --- disabled journal record (what every tuner decision site pays when
   FUNCTS_JOURNAL=off: one bool deref) --- *)

let () =
  Journal.disable ();
  let iters = 50_000_000 in
  for _ = 1 to 1_000_000 do
    Journal.record Journal.Tuner_sample "bench" ~arm:"x" ~value:1.0
  done;
  let t =
    timed (fun () ->
        for _ = 1 to iters do
          Journal.record Journal.Tuner_sample "bench" ~arm:"x" ~value:1.0
        done)
  in
  Printf.printf "journal(disabled): %.2f ns/call\n" (per_call t iters);
  Journal.enable ()

(* --- enabled journal record: mutex + clock read + ring store --- *)

let journal_enabled_ns =
  Journal.enable ();
  let iters = 2_000_000 in
  for _ = 1 to 100_000 do
    Journal.record Journal.Tuner_sample "bench" ~arm:"x" ~value:1.0
  done;
  let t =
    timed (fun () ->
        for _ = 1 to iters do
          Journal.record Journal.Tuner_sample "bench" ~arm:"x" ~value:1.0
        done)
  in
  let ns = per_call t iters in
  Journal.clear ();
  Printf.printf "journal(enabled): %.2f ns/call\n" ns;
  ns

(* --- always-on attribution budget on fused lstm.

   The per-group wall-time attribution piggybacks on clock reads the
   tuner already makes, so the only toggleable cost of leaving the
   journal on is its record calls.  An on-vs-off wall-clock A/B cannot
   certify a 2% budget here — run-to-run drift on a shared box is +/-5%
   — so the overhead is computed from two quantities that ARE stable:
   the enabled per-record cost (tight loop above) and the steady-state
   record rate of the workload (counted over the timed runs). *)

let () =
  let w = Option.get (Registry.find "lstm") in
  let batch = w.Workload.default_batch and seq = w.Workload.default_seq in
  let g = Workload.graph w ~batch ~seq in
  let args = w.Workload.inputs ~batch ~seq in
  let fg = Graph.clone g in
  ignore (Passes.tensorssa_pipeline fg);
  let eng =
    Engine.prepare ~parallel:false ~domains:config.Config.domains
      ~loop_grain:config.Config.loop_grain
      ~kernel_grain:config.Config.kernel_grain ~cache:false fg
      ~inputs:(Engine.input_shapes args)
  in
  let runs = 40 in
  Journal.enable ();
  (* warm: fill caches and let the tuner pin before measuring *)
  for _ = 1 to 30 do ignore (Engine.run eng args) done;
  let r0 = Journal.recorded () in
  let t = timed (fun () -> for _ = 1 to runs do ignore (Engine.run eng args) done) in
  let records = float (Journal.recorded () - r0) /. float runs in
  let run_ns = t /. float runs *. 1e9 in
  let pct = 100. *. records *. journal_enabled_ns /. run_ns in
  Printf.printf
    "attribution overhead: %.4f%% (lstm fused: %.1f journal records/run x \
     %.0f ns over %.3f ms/run)\n"
    pct records journal_enabled_ns (run_ns /. 1e6)
