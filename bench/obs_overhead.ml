(* Disabled-path cost of one span call, measured standalone. *)
let () =
  Functs.Tracer.disable ();
  let acc = ref 0 in
  let work () = incr acc in
  let iters = 50_000_000 in
  (* warm-up *)
  for _ = 1 to 1_000_000 do Functs.Tracer.span "x" work done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do Functs.Tracer.span "x" work done;
  let t_span = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do work () done;
  let t_bare = Unix.gettimeofday () -. t0 in
  Printf.printf "span(disabled): %.2f ns/call, bare closure: %.2f ns/call, overhead %.2f ns\n"
    (t_span /. float iters *. 1e9) (t_bare /. float iters *. 1e9)
    ((t_span -. t_bare) /. float iters *. 1e9);
  ignore !acc
